"""The subdomain index (paper §4.1, Algorithm 1).

Pairwise object-function intersections are hyperplanes that partition
the query domain into *subdomains*; within one subdomain the complete
ranking of the objects is the same for every query point (paper §3.2).
The index

* groups the workload's query points by subdomain,
* stores one lazily-evaluated *representative ranking prefix* per
  subdomain (the "at most one query evaluated per subdomain" sharing
  that Efficient Strategy Evaluation relies on),
* keeps the query points in an R-tree for affected-subspace retrieval
  and kNN-based insertion (§4.3), and
* registers subdomain boundaries in a counting bloom filter so that
  object removal can quickly find the subdomains to merge (§4.3).

Two construction paths produce the identical partition:

* :func:`find_subdomains` — the literal Algorithm 1 binary space
  partitioning loop (kept as the executable specification and used by
  the tests as a cross-check);
* the vectorized signature fast path used by
  :class:`SubdomainIndex` — group query points by the sign vector of
  ``Q . (p_a - p_b)`` over the hyperplane set.

Hyperplane budget (``mode``)
----------------------------
``"exact"`` uses all ``C(n, 2)`` intersections, which is what the
paper describes and what guarantees that rankings are constant within a
cell.  ``"relevant"`` restricts to intersections among objects that
appear in some query's top-``(k + margin)`` prefix: only those objects
can influence top-k membership at the indexed query points, so the
partition (and the shared prefixes, up to the margin depth) remains
correct for top-k purposes while the hyperplane count drops from
``O(n^2)`` to roughly ``O(t^2)`` for the much smaller set of
top-ranked objects ``t``.  Rankings *below* the margin depth are not
trusted in this mode; consumers that need deeper prefixes fall back to
direct evaluation.

Ties: queries lying exactly on a hyperplane count as *above* it (paper
§4.1); exact score ties between distinct objects are broken by object
id.  Both are measure-zero events for continuous data.
"""

from __future__ import annotations

import hashlib
import weakref
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.constants import EPS_TIE
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.errors import IndexCorruptionError, ValidationError
from repro.geometry.arrangement import group_by_signature, signature_matrix
from repro.geometry.hyperplane import EPS
from repro.index.bloom import CountingBloomFilter
from repro.index.mmapio import read_mmap_index, write_mmap_index
from repro.index.rtree import Rect, RTree
from repro.native import kernel as _kernel
from repro.parallel.construction import parallel_partition
from repro.parallel.pool import resolve_workers

__all__ = [
    "Subdomain",
    "SubdomainIndex",
    "dataset_fingerprint",
    "find_subdomains",
    "queryset_fingerprint",
    "relevant_pairs",
]

#: Schema tag written into every persisted index file; bumped whenever
#: the on-disk layout changes so stale files fail loudly.
INDEX_SCHEMA = "repro-subdomain-index/1"

#: Accepted ``save(format=...)`` values: the compressed single-file
#: ``.npz`` layout and the memory-mapped directory layout
#: (:mod:`repro.index.mmapio`).
INDEX_FORMATS = ("npz", "mmap")

_MODES = ("exact", "relevant")
_PARTITION_METHODS = ("vectorized", "literal")

#: Budget (in floats) for intermediate score blocks; large workloads are
#: processed in query chunks so the full ``m x n`` matrix never needs to
#: exist at once.
_SCORE_CHUNK = 4_000_000


@dataclass
class Subdomain:
    """One populated cell of the intersection arrangement."""

    sid: int  #: dense subdomain id
    signature: bytes  #: side vector over the index's hyperplane columns
    query_ids: np.ndarray  #: workload queries falling in this cell
    representative: int  #: query id whose evaluation is shared
    prefix: np.ndarray | None = None  #: ranking prefix (lazy)
    boundaries: frozenset = field(default_factory=frozenset)  #: boundary column indices

    @property
    def size(self) -> int:
        return int(self.query_ids.shape[0])


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content hash identifying a dataset (sense, shape, attributes)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(dataset.sense.encode("utf-8"))
    digest.update(repr(dataset.points.shape).encode("utf-8"))
    digest.update(np.ascontiguousarray(dataset.points, dtype=float).tobytes())
    return digest.hexdigest()


def queryset_fingerprint(queries: QuerySet) -> str:
    """Content hash identifying a workload (shape, weights, ks)."""
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(queries.weights.shape).encode("utf-8"))
    digest.update(np.ascontiguousarray(queries.weights, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(queries.ks, dtype=np.int64).tobytes())
    return digest.hexdigest()


def relevant_pairs(
    dataset: Dataset, queries: QuerySet, margin: int = 2
) -> list[tuple[int, int]]:
    """Object pairs whose intersections can affect indexed top-k results.

    Returns the sorted list of ``(a, b)`` pairs (``a < b``) among the
    union of every query's top-``(k + margin)`` objects.
    """
    if margin < 0:
        raise ValidationError(f"margin must be non-negative, got {margin}")
    matrix = dataset.matrix
    weights = queries.weights
    n, m = dataset.n, queries.m
    if n == 0 or m == 0:
        return []
    depths = np.minimum(n, queries.ks.astype(np.intp) + margin)
    max_depth = int(depths.max())
    contender = np.zeros(n, dtype=bool)
    # Batched prefix selection: one argpartition per query *chunk*
    # instead of a Python loop over queries.  Within the shared
    # ``max_depth`` candidate block, rows are ordered by (score, id) so
    # each query's own depth cut is a deterministic prefix.
    chunk = max(1, _SCORE_CHUNK // n)
    cols = np.arange(max_depth)
    for start in range(0, m, chunk):
        block = weights[start : start + chunk] @ matrix.T  # (b, n)
        if max_depth < n:
            part = np.argpartition(block, max_depth - 1, axis=1)[:, :max_depth]
        else:
            part = np.broadcast_to(np.arange(n), block.shape).copy()
        part_scores = np.take_along_axis(block, part, axis=1)
        order = np.lexsort((part, part_scores), axis=1)
        ranked = np.take_along_axis(part, order, axis=1)
        keep = cols[None, :] < depths[start : start + block.shape[0], None]
        contender[ranked[keep]] = True
    ordered = np.flatnonzero(contender).tolist()
    return [(a, b) for i, a in enumerate(ordered) for b in ordered[i + 1 :]]


def find_subdomains(
    normals: np.ndarray, points: np.ndarray, method: str = "vectorized"
) -> dict[bytes, list[int]]:
    """Algorithm 1: partition query points by intersection hyperplanes.

    Parameters
    ----------
    normals:
        ``(h, d)`` hyperplane normals (the intersection set ``I``).
    points:
        ``(m, d)`` query points.
    method:
        ``"vectorized"`` (default) computes the whole sign matrix with
        one ``points @ normals.T`` matmul and groups identical rows;
        ``"literal"`` runs the paper's binary-space-partitioning loop
        one hyperplane at a time.  Both produce the identical mapping
        (the property tests assert byte-identical output).

    Returns
    -------
    Mapping from the cell's side-signature bytes to the list of query
    indices it contains (ascending).  Only non-empty cells are kept,
    exactly as Algorithm 1 discards subdomains that contain no query
    point.
    """
    if method not in _PARTITION_METHODS:
        raise ValidationError(
            f"method must be one of {_PARTITION_METHODS}, got {method!r}"
        )
    normals = np.atleast_2d(np.asarray(normals, dtype=float))
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if points.shape[0] == 0:
        return {}
    if method == "vectorized":
        groups = group_by_signature(signature_matrix(points, normals, tol=EPS))
        return {key: members.tolist() for key, members in groups.items()}
    h = normals.shape[0]
    # Start with a single subdomain holding every query (lines 1-5).
    groups_lit: list[tuple[list[int], list[int]]] = [(list(range(points.shape[0])), [])]
    # Each group carries (query indices, side history) where the side
    # history is the signature accumulated over processed hyperplanes.
    for col in range(h):  # line 6: for all I_i in I
        normal = normals[col]
        next_groups: list[tuple[list[int], list[int]]] = []
        for members, history in groups_lit:  # line 7: subdomains overlapping I_i
            above: list[int] = []
            below: list[int] = []
            for q in members:  # lines 12-18
                if float(points[q] @ normal) <= EPS:
                    above.append(q)
                else:
                    below.append(q)
            if above:  # line 19-21: keep only populated children
                next_groups.append((above, history + [1]))
            if below:  # line 22-24
                next_groups.append((below, history + [-1]))
        groups_lit = next_groups
    return {
        np.asarray(history, dtype=np.int8).tobytes(): members
        for members, history in groups_lit
    }


class SubdomainIndex:
    """Query-point index grouped by subdomain (the Efficient-IQ index).

    Parameters
    ----------
    dataset, queries:
        The object set and the top-k workload.
    mode:
        ``"exact"`` (all pairwise intersections) or ``"relevant"``
        (top-ranked contenders only; see module docstring).
    margin:
        Extra ranking depth kept trustworthy in ``"relevant"`` mode.
    rtree_max_entries:
        Node capacity of the query-point R-tree.
    rtree_cls:
        Spatial index class for the query points — :class:`RTree`
        (default) or :class:`~repro.index.xtree.XTree`, the paper's two
        named options (§4.1).  Must provide the :class:`RTree` API.
    partition_method:
        ``"vectorized"`` (default) or ``"literal"`` — which
        :func:`find_subdomains` path builds the partition.  Both yield
        identical subdomains; the literal path exists as the executable
        specification and for benchmark baselines.
    workers:
        Worker-pool size for construction, resolved through
        :func:`repro.parallel.pool.resolve_workers` (explicit argument >
        ``REPRO_WORKERS`` environment variable > serial).  With 2 or
        more workers the normals and the signature partition are built
        by :func:`repro.parallel.construction.parallel_partition` —
        bit-for-bit identical to the serial path, which stays the
        default and the reference.  The literal partition method is
        inherently sequential and always runs serial.
    """

    def __init__(
        self,
        dataset: Dataset,
        queries: QuerySet,
        mode: str = "exact",
        margin: int = 2,
        rtree_max_entries: int = 16,
        rtree_cls: type[RTree] = RTree,
        partition_method: str = "vectorized",
        workers: "int | str | None" = None,
    ) -> None:
        if mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}, got {mode!r}")
        if partition_method not in _PARTITION_METHODS:
            raise ValidationError(
                f"partition_method must be one of {_PARTITION_METHODS}, "
                f"got {partition_method!r}"
            )
        if dataset.dim != queries.dim:
            raise ValidationError(
                f"dataset dim {dataset.dim} != query dim {queries.dim}"
            )
        self.dataset = dataset
        self.queries = queries
        self.mode = mode
        self.margin = margin
        self.partition_method = partition_method
        self.workers = resolve_workers(workers)
        if partition_method == "literal":
            self.workers = 0  # the literal BSP loop is the serial spec
        self.representative_evaluations = 0  #: full rankings computed so far
        self._mutation_hooks: list = []  #: weak refs to invalidation callbacks
        self._epoch = 0  #: bumped by every mutation (see :attr:`epoch`)

        matrix = dataset.matrix
        if mode == "exact":
            pairs = [(a, b) for a in range(dataset.n) for b in range(a + 1, dataset.n)]
        else:
            pairs = relevant_pairs(dataset, queries, margin)
        groups: dict[bytes, np.ndarray] | None = None
        if self.workers >= 2:
            pair_array = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
            keep_mask, self.normals, groups = parallel_partition(
                matrix, pair_array, queries.weights, self.workers
            )
            self.pairs = [pairs[i] for i in np.flatnonzero(keep_mask)]
        else:
            self.pairs = []
            rows = []
            for a, b in pairs:
                normal = matrix[a] - matrix[b]
                if np.abs(normal).max(initial=0.0) <= EPS:
                    continue  # identical objects never switch rank
                self.pairs.append((a, b))
                rows.append(normal)
            self.normals = (
                np.vstack(rows) if rows else np.empty((0, dataset.dim), dtype=float)
            )
        self.pair_column = {pair: col for col, pair in enumerate(self.pairs)}

        self._rtree_cls = rtree_cls
        self._rtree_max_entries = rtree_max_entries
        self._build_partition(groups)
        self._build_rtree(rtree_max_entries)
        self._boundaries_ready = False
        self.bloom: CountingBloomFilter | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_partition(
        cls,
        dataset: Dataset,
        queries: QuerySet,
        mode: str,
        margin: int,
        pairs: "list[tuple[int, int]]",
        normals: np.ndarray,
        groups: "dict[bytes, np.ndarray] | None",
        rtree_max_entries: int = 16,
        rtree_cls: type[RTree] = RTree,
        partition_method: str = "vectorized",
    ) -> "SubdomainIndex":
        """Assemble an index from an externally computed hyperplane set.

        The sharded builder computes pairs/normals once (or per shard,
        in a worker) and hands them here together with the signature
        ``groups``; everything downstream of the hyperplane pass —
        partition assembly, R-tree, lazy boundaries — is identical to
        :meth:`__init__`.  ``groups=None`` re-derives the partition
        serially from ``normals``, which is the path worker processes
        take when they ship only the hyperplane set.
        """
        index = cls.__new__(cls)
        index.dataset = dataset
        index.queries = queries
        index.mode = mode
        index.margin = margin
        index.partition_method = partition_method
        index.workers = 0
        index.representative_evaluations = 0
        index._mutation_hooks = []
        index._epoch = 0
        index.pairs = list(pairs)
        index.normals = normals
        index.pair_column = {pair: col for col, pair in enumerate(index.pairs)}
        index._rtree_cls = rtree_cls
        index._rtree_max_entries = rtree_max_entries
        index._build_partition(groups)
        index._build_rtree(rtree_max_entries)
        index._boundaries_ready = False
        index.bloom = None
        return index

    def _build_partition(self, groups: dict[bytes, np.ndarray] | None = None) -> None:
        # The full per-query signature matrix exists only while
        # grouping; the index at rest stores one signature per *cell*
        # plus a subdomain id per query — the paper's observation that
        # per-query storage is unnecessary ("mark this on the root-node
        # of the sub-tree instead of storing the same information for
        # each query point").  A precomputed ``groups`` mapping (the
        # merged output of the parallel construction) bypasses the
        # serial signature pass.
        if groups is None:
            if self.partition_method == "literal":
                cells = find_subdomains(
                    self.normals, self.queries.weights, method="literal"
                )
                groups = {
                    key: np.asarray(members, dtype=np.intp)
                    for key, members in cells.items()
                }
            else:
                signatures = signature_matrix(self.queries.weights, self.normals)
                groups = group_by_signature(signatures)
        self.subdomains: list[Subdomain] = []
        self.subdomain_of = np.empty(self.queries.m, dtype=np.intp)
        for signature_key in sorted(groups):  # deterministic order
            members = groups[signature_key]
            sid = len(self.subdomains)
            self.subdomains.append(
                Subdomain(
                    sid=sid,
                    signature=signature_key,
                    query_ids=members,
                    representative=int(members[0]),
                )
            )
            self.subdomain_of[members] = sid

    def _build_rtree(self, max_entries: int) -> None:
        if self._rtree_cls is RTree:
            # STR bulk load packs the whole workload in one pass; the
            # point variant sorts coordinate arrays with numpy instead
            # of Python tuple comparisons.
            self.rtree = RTree.bulk_load_points(
                self.queries.dim, self.queries.weights, max_entries=max_entries
            )
        else:
            # Alternative spatial indexes (e.g. the X-tree) build
            # incrementally so their overflow policy takes effect.
            self.rtree = self._rtree_cls(self.queries.dim, max_entries=max_entries)
            for payload, weights in enumerate(self.queries.weights):
                self.rtree.insert_point(weights, int(payload))

    def ensure_boundaries(self) -> None:
        """Mark which hyperplane columns bound which subdomains (lazy).

        A column is a *boundary* of a cell when masking it merges the
        cell with another populated cell — i.e. the hyperplane actually
        separates two populated subdomains, which is the only case the
        merge-on-removal maintenance cares about.  Registrations go to
        a counting bloom filter keyed ``(sid, column)`` (§4.3).
        """
        if self._boundaries_ready:
            return
        self._boundaries_ready = True
        for sub in self.subdomains:
            sub.boundaries = frozenset()
        self.bloom = CountingBloomFilter(
            expected_items=max(64, len(self.subdomains) * max(1, self.num_hyperplanes) // 4),
            false_positive_rate=0.01,
        )
        if not self.subdomains:
            return
        signatures = np.frombuffer(
            b"".join(sub.signature for sub in self.subdomains), dtype=np.int8
        ).reshape(len(self.subdomains), self.num_hyperplanes)
        for col in range(self.num_hyperplanes):
            masked = signatures.copy()
            masked[:, col] = 0
            seen: dict[bytes, list[int]] = {}
            for sid, row in enumerate(masked):
                seen.setdefault(row.tobytes(), []).append(sid)
            for sids in seen.values():
                if len(sids) > 1:
                    for sid in sids:
                        self.bloom.add((sid, col))
                        sub = self.subdomains[sid]
                        sub.boundaries = sub.boundaries | {col}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_hyperplanes(self) -> int:
        return self.normals.shape[0]

    @property
    def num_subdomains(self) -> int:
        return len(self.subdomains)

    def is_boundary(self, sid: int, column: int) -> bool:
        """Bloom-filter pre-check, then exact confirmation."""
        self.ensure_boundaries()
        if (sid, column) not in self.bloom:
            return False  # bloom has no false negatives
        return column in self.subdomains[sid].boundaries

    def mark_boundaries_dirty(self) -> None:
        """Invalidate the boundary registration after a mutation."""
        self._boundaries_ready = False

    # ------------------------------------------------------------------
    # IndexProtocol read surface (shared with ShardedSubdomainIndex)
    # ------------------------------------------------------------------
    #: A monolithic index is the one-shard degenerate case of the
    #: sharded architecture; these attributes let every consumer
    #: (planner, pool, EXPLAIN) treat both implementations uniformly.
    shards: int = 1
    routing: str = "none"

    @property
    def shard_sizes(self) -> tuple[int, ...]:
        """Workload size per shard (the whole workload, monolithically)."""
        return (self.queries.m,)

    @property
    def shard_epochs(self) -> tuple[int, ...]:
        """Per-shard mutation counters (one shard: the global epoch)."""
        return (self._epoch,)

    def signature_of(self, query_id: int) -> bytes:
        """Side-signature of the cell containing ``query_id``."""
        return self.subdomains[int(self.subdomain_of[query_id])].signature

    def cell_members(self, query_id: int) -> np.ndarray:
        """Global query ids sharing ``query_id``'s subdomain (ascending)."""
        return self.subdomains[int(self.subdomain_of[query_id])].query_ids

    def shard(self, s: int) -> "SubdomainIndex":
        """Shard ``s`` of the one-shard layout: the index itself."""
        if s != 0:
            raise ValidationError(f"shard id {s} out of range [0, 1)")
        return self

    def affected_candidates(
        self, domain: Rect, predicate: "Callable[[Rect, int], bool]"
    ) -> list[int]:
        """Query ids inside ``domain`` whose weights satisfy ``predicate``.

        The affected-subspace scan of ESE (§4.2), expressed on the index
        rather than on its R-tree so a sharded index can fan the scan
        out and merge.  ``predicate`` must be a pure function of the
        weight vector — it is evaluated per shard with no cross-shard
        state.
        """
        return self.rtree.search_where(domain, predicate)

    def hot_arrays(self) -> "list[tuple[str, str, object, str]]":
        """Construction-free arrays worth residing in shared memory.

        Returns ``(key, group, owner, attribute)`` tuples: the pool
        shares ``getattr(owner, attribute)`` under ``key`` within the
        named :class:`~repro.parallel.shm.SharedArrayStore` group, and
        each worker rebinds its own copy by matching keys against this
        same method on its forked index.  Groups let the sharded index
        re-share only the shards whose epoch moved.
        """
        return [
            ("external", "global", self.dataset, "_external"),
            ("weights", "global", self.queries, "_weights"),
            ("normals", "global", self, "normals"),
        ]

    # ------------------------------------------------------------------
    # Mutation notification: the epoch bus
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonically increasing mutation counter.

        Every maintenance operation (:mod:`repro.core.updates`) bumps it
        via :meth:`notify_mutation`.  Consumers caching state derived
        from the index (the ESE threshold cache, the RTA snapshot)
        record the epoch they were built at and lazily rebuild when it
        moved — so mutating the index directly, without going through
        any engine wrapper, can never serve stale results.
        """
        return self._epoch

    def subscribe_mutations(self, callback: "Callable[[], None]") -> None:
        """Register a callback fired after every index mutation.

        The epoch bus makes polling consumers (epoch comparison) the
        default; push-style consumers that must react *eagerly* to a
        mutation subscribe here.  Callbacks are held weakly: a
        garbage-collected subscriber is dropped silently.
        """
        try:
            ref = weakref.WeakMethod(callback)
        except TypeError:
            ref = weakref.ref(callback)
        self._mutation_hooks.append(ref)

    def notify_mutation(self) -> None:
        """Bump the epoch, then fire every live callback (``updates`` calls this)."""
        self._epoch += 1
        live = []
        for ref in self._mutation_hooks:
            callback = ref()
            if callback is not None:
                callback()
                live.append(ref)
        self._mutation_hooks = live

    def memory_estimate(self) -> int:
        """Approximate index size in bytes (Figures 4-6 metric).

        One signature per populated cell, one subdomain id per query,
        the lazily-evaluated ranking prefixes, the query R-tree, and the
        boundary counting-bloom filter (zero until boundaries are first
        registered — the filter is lazy).
        """
        signature_bytes = self.num_subdomains * self.num_hyperplanes
        prefix_bytes = sum(
            sub.prefix.size * 8 for sub in self.subdomains if sub.prefix is not None
        )
        structure = len(self.subdomains) * 96 + self.queries.m * 8
        bloom_bytes = self.bloom.memory_estimate() if self.bloom is not None else 0
        return (
            self.rtree.memory_estimate()
            + signature_bytes
            + prefix_bytes
            + structure
            + bloom_bytes
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _persist_payload(self) -> "tuple[dict[str, object], dict[str, np.ndarray]]":
        """``(metadata, arrays)`` shared by the ``.npz`` and mmap writers."""
        h = self.num_hyperplanes
        if self.subdomains:
            signatures = np.frombuffer(
                b"".join(sub.signature for sub in self.subdomains), dtype=np.int8
            ).reshape(self.num_subdomains, h)
        else:
            signatures = np.empty((0, h), dtype=np.int8)
        prefixes = [sub.prefix for sub in self.subdomains]
        prefix_lengths = np.asarray(
            [0 if p is None else p.shape[0] for p in prefixes], dtype=np.int64
        )
        evaluated = [p for p in prefixes if p is not None]
        prefix_concat = (
            np.concatenate(evaluated).astype(np.int64)
            if evaluated
            else np.empty(0, dtype=np.int64)
        )
        metadata: dict[str, object] = {
            "mode": self.mode,
            "margin": int(self.margin),
            "partition_method": self.partition_method,
            "rtree_max_entries": int(self._rtree_max_entries),
            "epoch": int(self._epoch),
            "dataset_fingerprint": dataset_fingerprint(self.dataset),
            "queries_fingerprint": queryset_fingerprint(self.queries),
        }
        arrays: dict[str, np.ndarray] = {
            "pairs": np.asarray(self.pairs, dtype=np.int64).reshape(-1, 2),
            "normals": np.asarray(self.normals, dtype=float),
            "signatures": signatures,
            "subdomain_of": self.subdomain_of.astype(np.int64),
            "representatives": np.asarray(
                [sub.representative for sub in self.subdomains], dtype=np.int64
            ),
            "prefix_lengths": prefix_lengths,
            "prefix_concat": prefix_concat,
        }
        return metadata, arrays

    def save(self, path: "str | Path", format: str = "npz") -> None:
        """Persist the index: versioned ``.npz`` file or mmap directory.

        Both layouts store the partition (hyperplane pairs, normals,
        one signature per cell, per-query subdomain ids,
        representatives), every ranking prefix evaluated so far, the
        mutation epoch, and content fingerprints of the dataset and the
        workload — :meth:`load` validates the fingerprints, so a saved
        index can never silently serve answers for different data.
        ``format="npz"`` writes the compressed single file;
        ``format="mmap"`` writes the raw-``.npy`` directory layout of
        :mod:`repro.index.mmapio`, which :meth:`load` reopens in O(1)
        via read-only memory maps.
        """
        if format not in INDEX_FORMATS:
            raise ValidationError(
                f"unknown index format {format!r}; choose from {INDEX_FORMATS}"
            )
        path = Path(path)
        metadata, arrays = self._persist_payload()
        if format == "mmap":
            write_mmap_index(path, metadata, arrays)
            return
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                schema=INDEX_SCHEMA,
                mode=str(metadata["mode"]),
                margin=np.int64(int(metadata["margin"])),  # type: ignore[call-overload]
                partition_method=str(metadata["partition_method"]),
                rtree_max_entries=np.int64(int(metadata["rtree_max_entries"])),  # type: ignore[call-overload]
                epoch=np.int64(int(metadata["epoch"])),  # type: ignore[call-overload]
                dataset_fingerprint=str(metadata["dataset_fingerprint"]),
                queries_fingerprint=str(metadata["queries_fingerprint"]),
                **arrays,
            )

    @classmethod
    def _check_metadata(
        cls,
        metadata: "dict[str, object]",
        origin: Path,
        dataset: Dataset,
        queries: QuerySet,
    ) -> None:
        """Validate loaded header metadata before any payload is touched.

        Missing fields are corruption (the container is damaged or
        written under a different key layout); an intact header naming
        different data or unknown enum values is a validation failure.
        """
        required = (
            "mode",
            "margin",
            "partition_method",
            "rtree_max_entries",
            "epoch",
            "dataset_fingerprint",
            "queries_fingerprint",
        )
        for key in required:
            if key not in metadata:
                raise IndexCorruptionError(
                    f"saved index {origin} is missing required field {key!r}"
                )
        if str(metadata["dataset_fingerprint"]) != dataset_fingerprint(dataset):
            raise ValidationError(
                "saved index was built for a different dataset (fingerprint mismatch)"
            )
        if str(metadata["queries_fingerprint"]) != queryset_fingerprint(queries):
            raise ValidationError(
                "saved index was built for a different workload (fingerprint mismatch)"
            )
        if (
            str(metadata["mode"]) not in _MODES
            or str(metadata["partition_method"]) not in _PARTITION_METHODS
        ):
            raise ValidationError("saved index carries unknown mode/partition_method")

    @classmethod
    def load(
        cls, path: "str | Path", dataset: Dataset, queries: QuerySet
    ) -> "SubdomainIndex":
        """Restore a saved index against the *same* dataset and workload.

        Accepts both persisted layouts: a ``.npz`` file or a mmap
        directory (detected by ``path`` being a directory).  The stored
        fingerprints must match the provided ``dataset`` and ``queries``
        (a mismatch raises :class:`~repro.errors.ValidationError`), and
        the header is validated *before* any payload matrix is
        decompressed or faulted in — a stale or mismatched file fails
        in O(metadata), not O(index).  The restored index serves
        identical answers to the one that was saved, including the
        already-evaluated ranking prefixes and the mutation epoch.  The
        R-tree is rebuilt by bulk load; boundary registration stays lazy
        exactly as after a fresh construction.

        A mmap load keeps the heavy matrices as read-only memory maps
        (O(1) open, page-cache shared across forked workers) and copies
        only ``subdomain_of``, which the update paths write in place;
        every other mutation rebinds, so the file on disk can never be
        modified through a loaded index.
        """
        path = Path(path)
        if not path.exists():
            raise ValidationError(f"no saved index at {path}")
        if path.is_dir():
            metadata, arrays = read_mmap_index(path)
            cls._check_metadata(metadata, path, dataset, queries)
            for key in (
                "pairs",
                "normals",
                "signatures",
                "subdomain_of",
                "representatives",
                "prefix_lengths",
                "prefix_concat",
            ):
                if key not in arrays:
                    raise IndexCorruptionError(
                        f"saved index {path} is missing required field {key!r}"
                    )
            return cls._restore(
                dataset,
                queries,
                metadata,
                normals=np.asarray(arrays["normals"], dtype=float),
                signatures=np.asarray(arrays["signatures"], dtype=np.int8),
                pairs=np.asarray(arrays["pairs"], dtype=np.intp),
                # The one array the update paths write in place
                # (cell-merge renumbering) — everything else stays a
                # read-only map.
                subdomain_of=np.array(arrays["subdomain_of"], dtype=np.intp),
                representatives=np.asarray(arrays["representatives"], dtype=np.intp),
                prefix_lengths=np.asarray(arrays["prefix_lengths"], dtype=np.intp),
                prefix_concat=np.asarray(arrays["prefix_concat"], dtype=np.intp),
            )
        # A damaged file must surface as a typed ReproError, never as a
        # bare zipfile/KeyError leaking numpy's storage format: BadZipFile
        # and OSError/EOFError cover truncation and garbage bytes, KeyError
        # a file written under a different key layout, and ValueError the
        # pickled-object refusal path of allow_pickle=False.  The header
        # scalars are read and validated first; npz members decompress on
        # access, so a rejected file never pays for its payload matrices.
        try:
            with np.load(path, allow_pickle=False) as data:
                schema = str(data["schema"][()])
                if schema != INDEX_SCHEMA:
                    raise ValidationError(
                        f"unsupported index schema {schema!r} (expected {INDEX_SCHEMA!r})"
                    )
                metadata = {
                    "mode": str(data["mode"][()]),
                    "margin": int(data["margin"][()]),
                    "partition_method": str(data["partition_method"][()]),
                    "rtree_max_entries": int(data["rtree_max_entries"][()]),
                    "epoch": int(data["epoch"][()]),
                    "dataset_fingerprint": str(data["dataset_fingerprint"][()]),
                    "queries_fingerprint": str(data["queries_fingerprint"][()]),
                }
                cls._check_metadata(metadata, path, dataset, queries)
                normals = np.asarray(data["normals"], dtype=float)
                signatures = np.asarray(data["signatures"], dtype=np.int8)
                pairs = np.asarray(data["pairs"], dtype=np.intp)
                subdomain_of = np.asarray(data["subdomain_of"], dtype=np.intp)
                representatives = np.asarray(data["representatives"], dtype=np.intp)
                prefix_lengths = np.asarray(data["prefix_lengths"], dtype=np.intp)
                prefix_concat = np.asarray(data["prefix_concat"], dtype=np.intp)
        except KeyError as exc:
            raise IndexCorruptionError(
                f"saved index {path} is missing required field {exc.args[0]!r}"
            ) from exc
        except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
            raise IndexCorruptionError(
                f"saved index {path} is corrupt or truncated: {exc}"
            ) from exc
        return cls._restore(
            dataset,
            queries,
            metadata,
            normals=normals,
            signatures=signatures,
            pairs=pairs,
            subdomain_of=subdomain_of,
            representatives=representatives,
            prefix_lengths=prefix_lengths,
            prefix_concat=prefix_concat,
        )

    @classmethod
    def _restore(
        cls,
        dataset: Dataset,
        queries: QuerySet,
        metadata: "dict[str, object]",
        *,
        normals: np.ndarray,
        signatures: np.ndarray,
        pairs: np.ndarray,
        subdomain_of: np.ndarray,
        representatives: np.ndarray,
        prefix_lengths: np.ndarray,
        prefix_concat: np.ndarray,
    ) -> "SubdomainIndex":
        """Rebuild an index object from validated persisted state."""
        mode = str(metadata["mode"])
        partition_method = str(metadata["partition_method"])
        margin = int(metadata["margin"])  # type: ignore[call-overload]
        max_entries = int(metadata["rtree_max_entries"])  # type: ignore[call-overload]
        epoch = int(metadata["epoch"])  # type: ignore[call-overload]

        index = cls.__new__(cls)
        index.dataset = dataset
        index.queries = queries
        index.mode = mode
        index.margin = margin
        index.partition_method = partition_method
        index.workers = 0
        index.representative_evaluations = 0
        index._mutation_hooks = []
        index._epoch = epoch
        index.pairs = [(int(a), int(b)) for a, b in pairs]
        index.normals = normals
        index.pair_column = {pair: col for col, pair in enumerate(index.pairs)}
        index.subdomain_of = subdomain_of
        num_subdomains = signatures.shape[0]
        # Stable argsort of the per-query subdomain ids reconstructs
        # each cell's ascending member list without re-partitioning.
        order = np.argsort(subdomain_of, kind="stable").astype(np.intp)
        counts = np.bincount(subdomain_of, minlength=num_subdomains)
        bounds = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)
        prefix_starts = np.concatenate([[0], np.cumsum(prefix_lengths)]).astype(np.intp)
        index.subdomains = []
        for sid in range(num_subdomains):
            length = int(prefix_lengths[sid]) if sid < prefix_lengths.shape[0] else 0
            prefix = (
                prefix_concat[prefix_starts[sid] : prefix_starts[sid] + length]
                if length
                else None
            )
            index.subdomains.append(
                Subdomain(
                    sid=sid,
                    signature=signatures[sid].tobytes(),
                    query_ids=order[bounds[sid] : bounds[sid + 1]],
                    representative=int(representatives[sid]),
                    prefix=prefix,
                )
            )
        index._rtree_cls = RTree
        index._rtree_max_entries = max_entries
        index._build_rtree(max_entries)
        index._boundaries_ready = False
        index.bloom = None
        index.validate()
        return index

    # ------------------------------------------------------------------
    # Representative rankings
    # ------------------------------------------------------------------
    def _prefix_depth(self, sub: Subdomain) -> int:
        needed = int(self.queries.ks[sub.query_ids].max()) + 1
        if self.mode == "relevant":
            needed += self.margin
        return min(self.dataset.n, needed)

    def prefix(self, sid: int) -> np.ndarray:
        """Ranking prefix (object ids, best first) shared by the cell.

        Evaluated lazily from the cell's representative query — the "at
        most one query evaluated per subdomain" rule of ESE.
        """
        sub = self.subdomains[sid]
        depth = self._prefix_depth(sub)
        if sub.prefix is None or sub.prefix.shape[0] < depth:
            weights, __ = self.queries.query(sub.representative)
            scores = self.dataset.matrix @ weights
            order = np.argsort(scores, kind="stable")
            sub.prefix = order[:depth].astype(np.intp)
            self.representative_evaluations += 1
        return sub.prefix

    def kth_other(self, target: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-query threshold object against a target (Eq. 6).

        Returns ``(kth_ids, theta)`` where ``kth_ids[j]`` is the id of
        the k-th ranked object of query ``j`` among ``D \\ {target}``
        and ``theta[j]`` its score at ``j`` (``+inf`` when fewer than
        ``k`` other objects exist).  The improved target hits query
        ``j`` iff its score is below ``theta[j]`` (ties by id).
        """
        self.dataset._check_id(target)
        m = self.queries.m
        kth_ids = np.full(m, -1, dtype=np.intp)
        theta = np.full(m, np.inf)
        weights = self.queries.weights
        ks = self.queries.ks
        matrix = self.dataset.matrix
        for sub in self.subdomains:
            prefix = self.prefix(sub.sid)
            others = prefix[prefix != target]
            members = sub.query_ids
            member_ks = ks[members].astype(np.intp)
            deep = member_ks <= others.shape[0]
            covered = members[deep]
            if covered.size:
                # Batched threshold lookup: every member whose k is
                # within the shared prefix resolves with one fancy
                # index plus one row-wise dot product.
                kth = others[member_ks[deep] - 1]
                kth_ids[covered] = kth
                theta[covered] = np.einsum(
                    "ij,ij->i", weights[covered], matrix[kth]
                )
            for j, k in zip(members[~deep], member_ks[~deep]):
                if self.dataset.n - 1 >= k:
                    # Prefix too shallow (can only happen in relevant
                    # mode); fall back to a direct evaluation.
                    scores = matrix @ weights[j]
                    order = np.argsort(scores, kind="stable")
                    other_order = order[order != target]
                    kth = int(other_order[k - 1])
                    kth_ids[j] = kth
                    theta[j] = float(scores[kth])
        return kth_ids, theta

    def hits_mask(self, target: int) -> np.ndarray:
        """Boolean mask over queries currently hit by ``target``."""
        kth_ids, theta = self.kth_other(target)
        scores = self.queries.weights @ self.dataset.matrix[target]
        return _beats(scores, theta, target, kth_ids)

    def hits(self, target: int) -> int:
        """``H(target)`` — the number of queries the object hits."""
        return int(self.hits_mask(target).sum())

    def validate(self) -> None:
        """Check partition invariants (used by tests and after updates)."""
        seen = np.zeros(self.queries.m, dtype=int)
        for sub in self.subdomains:
            seen[sub.query_ids] += 1
            if not np.all(self.subdomain_of[sub.query_ids] == sub.sid):
                raise ValidationError("subdomain_of disagrees with membership lists")
        if not np.all(seen == 1):
            raise ValidationError("subdomains do not partition the workload")
        self.rtree.validate()
        if len(self.rtree) != self.queries.m:
            raise ValidationError("R-tree size disagrees with workload size")


#: Scores within this relative band count as tied (resolved by object
#: id).  Needed because the evaluator's batched matrix products and the
#: threshold dot products may round the *same* exact value differently.
_TIE_TOL = EPS_TIE


def _beats_batch(
    scores: np.ndarray, theta: np.ndarray, target: int, kth_ids: np.ndarray
) -> np.ndarray:
    """Batched Eq. 6 with id tie-break: does the target make top-k?

    The one and only statement of the membership rule: ``scores`` is an
    ``(m, b)`` matrix of target scores (one column per candidate
    position) and the result is the ``(m, b)`` boolean membership
    matrix.  An infinite threshold means fewer than k other objects
    exist, so the target is always in the top-k.  Single-position
    callers go through :func:`_beats`, which delegates here — keeping
    the rule in exactly one place so the vectorized candidate batches of
    :meth:`~repro.core.ese.StrategyEvaluator.evaluate_many` can never
    drift from the per-position path.

    Dispatches through the kernel registry (:mod:`repro.native`): the
    canonical implementation is the ``beats_batch`` python kernel, and
    the active backend may swap in its float-exact numba twin.
    """
    return _kernel("beats_batch")(scores, theta, target, kth_ids, _TIE_TOL)


def _beats(scores: np.ndarray, theta: np.ndarray, target: int, kth_ids: np.ndarray) -> np.ndarray:
    """Vectorized Eq. 6 for one candidate position (see :func:`_beats_batch`)."""
    return _beats_batch(scores[:, None], theta, target, kth_ids)[:, 0]
