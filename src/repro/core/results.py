"""Result types returned by improvement-query searches."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.strategy import Strategy

__all__ = ["IterationRecord", "IQResult"]


@dataclass(frozen=True)
class IterationRecord:
    """One greedy iteration: which candidate won and what it bought."""

    query_id: int  #: the query whose candidate strategy was applied
    cost: float  #: incremental cost of the applied strategy
    hits_after: int  #: H(p') after applying it
    candidates: int  #: candidate strategies scored this iteration


@dataclass
class IQResult:
    """Outcome of a Min-Cost or Max-Hit improvement query.

    ``strategy`` is expressed in the *user's* attribute convention
    (matching the dataset's ``sense``), ready to apply to the original
    object.  ``total_cost`` follows the greedy accounting: the sum of
    the per-iteration incremental costs (the same measure used for all
    baselines, so comparisons in the benchmarks are apples-to-apples).
    """

    target: int
    strategy: Strategy
    hits_before: int
    hits_after: int
    total_cost: float
    satisfied: bool  #: Min-Cost: reached tau; Max-Hit: stayed within beta
    iterations: list[IterationRecord] = field(default_factory=list)
    evaluations: int = 0  #: strategy evaluations (ESE/RTA calls) consumed

    @property
    def hits_gained(self) -> int:
        return self.hits_after - self.hits_before

    @property
    def cost_per_hit(self) -> float:
        """The paper's unified quality metric (§6.3.2): cost / hits.

        ``inf`` when nothing is hit; 0 for a free no-op.
        """
        if self.hits_after <= 0:
            return float("inf") if self.total_cost > 0 else 0.0
        return self.total_cost / self.hits_after

    def improved_point(self, original: np.ndarray) -> np.ndarray:
        """Apply the found strategy to the original object."""
        return self.strategy.apply_to(np.asarray(original, dtype=float))
