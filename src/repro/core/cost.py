"""Cost functions for improvement strategies.

The paper lets the query issuer supply an arbitrary cost function
``Cost_p(s)`` measuring the price of adjusting the target's attributes
by ``s`` (§3.1).  The experiments use the Euclidean cost of Eq. 30::

    Cost(s) = sqrt(sum_i s_i^2)

This module provides that cost plus the family a practitioner would
actually reach for (weighted L1/L2, asymmetric per-direction pricing,
and arbitrary callables).  Each built-in cost declares enough structure
for :mod:`repro.optimize.hit_cost` to solve the "cheapest strategy that
hits one query" subproblem (Eq. 13-14) in closed form or by LP;
:class:`CallableCost` falls back to a numeric solver.

All costs must satisfy ``cost(0) == 0`` and ``cost(s) >= 0``; built-ins
are convex, which the greedy searches implicitly rely on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.constants import EPS_COST, EPS_FEASIBILITY
from repro.errors import ValidationError

__all__ = [
    "CostFunction",
    "L2Cost",
    "L1Cost",
    "LInfCost",
    "AsymmetricLinearCost",
    "CallableCost",
    "euclidean_cost",
]


def _check_weights(weights: "np.typing.ArrayLike | None", dim: int) -> np.ndarray:
    if weights is None:
        return np.ones(dim)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (dim,):
        raise ValidationError(f"weights shape {weights.shape} != ({dim},)")
    if np.any(weights <= 0) or not np.isfinite(weights).all():
        raise ValidationError("cost weights must be positive and finite")
    return weights


class CostFunction(ABC):
    """A convex, non-negative cost of an improvement strategy."""

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValidationError(f"dim must be positive, got {dim}")
        self.dim = dim

    @abstractmethod
    def __call__(self, s: np.ndarray) -> float:
        """Cost of applying strategy ``s``."""

    def _coerce(self, s: "np.typing.ArrayLike") -> np.ndarray:
        s = np.asarray(s, dtype=float)
        if s.shape != (self.dim,):
            raise ValidationError(f"strategy shape {s.shape} != ({self.dim},)")
        return s


class L2Cost(CostFunction):
    """Weighted Euclidean cost ``sqrt(sum w_i s_i^2)`` (Eq. 30 when w=1)."""

    def __init__(self, dim: int, weights: "np.typing.ArrayLike | None" = None) -> None:
        super().__init__(dim)
        self.weights = _check_weights(weights, dim)

    def __call__(self, s: "np.typing.ArrayLike") -> float:
        s = self._coerce(s)
        return float(np.sqrt(np.sum(self.weights * s * s)))


class L1Cost(CostFunction):
    """Weighted Manhattan cost ``sum w_i |s_i|`` — per-unit pricing."""

    def __init__(self, dim: int, weights: "np.typing.ArrayLike | None" = None) -> None:
        super().__init__(dim)
        self.weights = _check_weights(weights, dim)

    def __call__(self, s: "np.typing.ArrayLike") -> float:
        s = self._coerce(s)
        return float(np.sum(self.weights * np.abs(s)))


class LInfCost(CostFunction):
    """Weighted Chebyshev cost ``max w_i |s_i|`` — bottleneck pricing."""

    def __init__(self, dim: int, weights: "np.typing.ArrayLike | None" = None) -> None:
        super().__init__(dim)
        self.weights = _check_weights(weights, dim)

    def __call__(self, s: "np.typing.ArrayLike") -> float:
        s = self._coerce(s)
        return float(np.max(self.weights * np.abs(s), initial=0.0))


class AsymmetricLinearCost(CostFunction):
    """Linear cost with different prices for increases and decreases.

    ``cost(s) = sum_i up_i * max(s_i, 0) + down_i * max(-s_i, 0)``.
    Captures e.g. "raising resolution is expensive, lowering it is
    cheap but not free".  Prices must be positive (a zero price would
    make unbounded free movement optimal).
    """

    def __init__(
        self,
        dim: int,
        up: "np.typing.ArrayLike | None" = None,
        down: "np.typing.ArrayLike | None" = None,
    ) -> None:
        super().__init__(dim)
        self.up = _check_weights(up, dim)
        self.down = _check_weights(down, dim)

    def __call__(self, s: "np.typing.ArrayLike") -> float:
        s = self._coerce(s)
        return float(np.sum(self.up * np.clip(s, 0, None) - self.down * np.clip(s, None, 0)))


class CallableCost(CostFunction):
    """Wraps a user-supplied ``f(s) -> float``.

    The wrapped function is assumed convex with ``f(0) = 0``; the
    library solves its hit subproblems numerically
    (:func:`repro.optimize.hit_cost.min_cost_to_hit`), so non-convex
    costs yield approximate (still feasible) strategies.
    """

    def __init__(self, dim: int, fn: "Callable[[np.ndarray], float]") -> None:
        super().__init__(dim)
        if not callable(fn):
            raise ValidationError("fn must be callable")
        self.fn = fn
        value_at_zero = float(fn(np.zeros(dim)))
        if abs(value_at_zero) > EPS_FEASIBILITY:
            raise ValidationError(f"cost(0) must be 0, got {value_at_zero}")

    def __call__(self, s: "np.typing.ArrayLike") -> float:
        value = float(self.fn(self._coerce(s)))
        if value < -EPS_COST or not np.isfinite(value):
            raise ValidationError(f"cost function returned invalid value {value}")
        return max(value, 0.0)


def euclidean_cost(dim: int) -> L2Cost:
    """The paper's experimental cost function (Eq. 30)."""
    return L2Cost(dim)
