"""Combinatorial (multi-target) improvement strategies (paper §5.1).

A user selects several target objects, each with its own cost function
and strategy bounds, and asks for the set of per-target strategies that
jointly reach ``tau`` hits with minimal total cost (Def. 5) or maximize
joint hits within a shared budget (Def. 6).  A query hit by several
improved targets counts once.

The algorithms are the paper's modifications of Algorithms 3/4: each
round generates, for every (target, unhit query) pair, the cheapest
strategy making that target hit that query, then applies the candidate
with the best cost-per-hit ratio.

Interaction between targets: moving target A can displace target B from
a top-k result it occupied.  Candidate *scoring* inside a round treats
the other targets as fixed (as the paper's pseudocode does), but after
every application the joint hit mask is recomputed exactly from the
current positions of all objects, so the greedy always works from (and
reports) true joint hit counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TypeVar

import numpy as np

from repro.constants import EPS_COST, EPS_FEASIBILITY
from repro.core.cost import CostFunction
from repro.core.strategy import Strategy, StrategySpace
from repro.core.sharding import IndexProtocol
from repro.errors import InfeasibleError, ValidationError
from repro.observe import stage, tally
from repro.optimize.hit_cost import DEFAULT_MARGIN, min_cost_to_hit

__all__ = ["MultiTargetResult", "combinatorial_min_cost", "combinatorial_max_hit"]

_T = TypeVar("_T")


@dataclass
class MultiTargetResult:
    """Outcome of a combinatorial IQ."""

    targets: list[int]
    strategies: dict[int, Strategy]  #: per-target strategies (internal space)
    hits_before: int  #: joint (union) hits before improvement
    hits_after: int  #: joint hits after improvement
    total_cost: float
    satisfied: bool
    rounds: int = 0
    applied: list[tuple[int, int, float]] = field(default_factory=list)  #: (target, query, cost)

    @property
    def cost_per_hit(self) -> float:
        if self.hits_after <= 0:
            return float("inf") if self.total_cost > 0 else 0.0
        return self.total_cost / self.hits_after


class _JointState:
    """Current positions of every object with exact joint-hit accounting."""

    def __init__(self, index: IndexProtocol, targets: list[int]) -> None:
        if len(set(targets)) != len(targets):
            raise ValidationError("duplicate target ids")
        for t in targets:
            index.dataset._check_id(t)
        self.index = index
        self.targets = targets
        self.matrix = index.dataset.matrix.copy()  # mutated as strategies apply
        self.weights = index.queries.weights
        self.ks = index.queries.ks

    def scores(self) -> np.ndarray:
        return self.weights @ self.matrix.T  # (m, n)

    def member_mask(self, scores: np.ndarray, t: int) -> np.ndarray:
        """Is target ``t`` in the top-k of each query? (ties by id)."""
        mine = scores[:, t][:, None]
        better = (scores < mine).sum(axis=1)
        ties = ((scores == mine) & (np.arange(self.matrix.shape[0])[None, :] < t)).sum(axis=1)
        return (better + ties) < self.ks

    def joint_mask(self) -> np.ndarray:
        scores = self.scores()
        mask = np.zeros(self.weights.shape[0], dtype=bool)
        for t in self.targets:
            mask |= self.member_mask(scores, t)
        return mask

    def thresholds(self, t: int) -> np.ndarray:
        """theta per query: k-th best score among all objects except ``t``."""
        scores = self.scores().copy()
        scores[:, t] = np.inf
        scores.sort(axis=1)
        return scores[np.arange(scores.shape[0]), self.ks - 1]


def _normalize_per_target(value: _T | dict[int, _T], targets: list[int], kind: str) -> dict[int, _T]:
    if isinstance(value, dict):
        missing = [t for t in targets if t not in value]
        if missing:
            raise ValidationError(f"missing {kind} for targets {missing}")
        return dict(value)
    return {t: value for t in targets}


def _candidates(
    state: _JointState,
    costs: dict[int, CostFunction],
    spaces: dict[int, StrategySpace],
    applied: dict[int, np.ndarray],
    mask: np.ndarray,
    margin: float,
    max_cost: float | None,
) -> list[tuple[int, int, np.ndarray, float, int]]:
    """All (target, query, vector, cost, joint_hits) candidates of a round."""
    out: list[tuple[int, int, np.ndarray, float, int]] = []
    unhit = np.flatnonzero(~mask)
    if unhit.size == 0:
        return out
    for t in state.targets:
        theta = state.thresholds(t)
        position = state.matrix[t]
        room = spaces[t].shifted(applied[t])
        for j in unhit:
            gap = float(theta[j] - state.weights[j] @ position)
            try:
                candidate = min_cost_to_hit(
                    costs[t], state.weights[j], gap, space=room, margin=margin
                )
            except InfeasibleError:
                continue
            if max_cost is not None and candidate.cost > max_cost:
                # §5.1 step 2: drop over-budget candidates.  Exact
                # comparison — the caller grants EPS_COST once against
                # the original budget, never per iteration.
                continue
            # Score: joint hits with the other targets frozen.
            scores = state.scores()
            scores[:, t] = state.weights @ (position + candidate.vector)
            joint = np.zeros(mask.shape[0], dtype=bool)
            for u in state.targets:
                joint |= state.member_mask(scores, u)
            out.append((t, int(j), candidate.vector, candidate.cost, int(joint.sum())))
    return out


def _pick_best_ratio(
    candidates: list[tuple[int, int, np.ndarray, float, int]],
) -> tuple[int, int, np.ndarray, float, int] | None:
    """Min cost-per-hit; ties by cost then (target, query) for determinism."""
    def key(c: tuple[int, int, np.ndarray, float, int]) -> tuple[float, float, int, int]:
        t, j, __, cost, hits = c
        ratio = cost / hits if hits > 0 else np.inf
        return (ratio, cost, t, j)

    viable = [c for c in candidates if c[4] > 0]
    return min(viable, key=key) if viable else None


def combinatorial_min_cost(
    index: IndexProtocol,
    targets: list[int],
    tau: int,
    costs: CostFunction | dict[int, CostFunction],
    spaces: StrategySpace | dict[int, StrategySpace] | None = None,
    margin: float = DEFAULT_MARGIN,
    max_rounds: int | None = None,
) -> MultiTargetResult:
    """Combinatorial Min-Cost improvement strategy (Def. 5, §5.1 steps).

    ``costs`` may be a single :class:`CostFunction` shared by all
    targets or a ``{target: cost}`` dict; likewise ``spaces``.
    """
    if tau < 1 or tau > index.queries.m:
        raise ValidationError(f"tau must be in [1, {index.queries.m}], got {tau}")
    state = _JointState(index, list(targets))
    costs = _normalize_per_target(costs, state.targets, "cost function")
    spaces = _normalize_per_target(
        spaces or StrategySpace.unconstrained(index.dataset.dim), state.targets, "strategy space"
    )
    applied = {t: np.zeros(index.dataset.dim) for t in state.targets}
    spent = {t: 0.0 for t in state.targets}
    mask = state.joint_mask()
    hits_before = int(mask.sum())
    max_rounds = max_rounds if max_rounds is not None else 2 * tau + 16
    log: list[tuple[int, int, float]] = []
    stalls = 0

    while int(mask.sum()) < tau and len(log) < max_rounds:
        with stage("candidates"):
            candidates = _candidates(state, costs, spaces, applied, mask, margin, None)
        tally("candidates", len(candidates))
        best = _pick_best_ratio(candidates)
        if best is None:
            break
        if best[4] > tau:
            # Avoid overshooting (§5.1 step 2): cheapest reaching tau.
            reaching = [c for c in candidates if c[4] >= tau]
            best = min(reaching, key=lambda c: (c[3], c[0], c[1]))
        t, j, vector, cost_value, __ = best
        before = int(mask.sum())
        applied[t] = applied[t] + vector
        spent[t] += cost_value
        state.matrix[t] = state.matrix[t] + vector
        tally("iterations")
        tally("evaluations")
        with stage("evaluate"):
            mask = state.joint_mask()
        log.append((t, j, cost_value))
        stalls = stalls + 1 if int(mask.sum()) <= before else 0
        if stalls >= 2:
            break

    hits_after = int(mask.sum())
    return MultiTargetResult(
        targets=state.targets,
        strategies={t: Strategy(applied[t].copy(), cost=spent[t]) for t in state.targets},
        hits_before=hits_before,
        hits_after=hits_after,
        total_cost=float(sum(spent.values())),
        satisfied=hits_after >= tau,
        rounds=len(log),
        applied=log,
    )


def combinatorial_max_hit(
    index: IndexProtocol,
    targets: list[int],
    budget: float,
    costs: CostFunction | dict[int, CostFunction],
    spaces: StrategySpace | dict[int, StrategySpace] | None = None,
    margin: float = DEFAULT_MARGIN,
    max_rounds: int | None = None,
) -> MultiTargetResult:
    """Combinatorial Max-Hit improvement strategy (Def. 6, §5.1 steps)."""
    if budget < 0:
        raise ValidationError(f"budget must be non-negative, got {budget}")
    state = _JointState(index, list(targets))
    costs = _normalize_per_target(costs, state.targets, "cost function")
    spaces = _normalize_per_target(
        spaces or StrategySpace.unconstrained(index.dataset.dim), state.targets, "strategy space"
    )
    applied = {t: np.zeros(index.dataset.dim) for t in state.targets}
    spent = {t: 0.0 for t in state.targets}
    total = 0.0
    mask = state.joint_mask()
    hits_before = int(mask.sum())
    max_rounds = max_rounds if max_rounds is not None else 2 * index.queries.m + 16
    log: list[tuple[int, int, float]] = []
    stalls = 0

    while total < budget and len(log) < max_rounds:
        # Slack granted once against the original budget (see max_hit_iq).
        with stage("candidates"):
            candidates = _candidates(
                state, costs, spaces, applied, mask, margin, max_cost=(budget + EPS_COST) - total
            )
        tally("candidates", len(candidates))
        best = _pick_best_ratio(candidates)
        if best is None:
            break  # §5.1 step 2: candidate set empty -> terminate
        t, j, vector, cost_value, __ = best
        before = int(mask.sum())
        applied[t] = applied[t] + vector
        spent[t] += cost_value
        total += cost_value
        state.matrix[t] = state.matrix[t] + vector
        tally("iterations")
        tally("evaluations")
        with stage("evaluate"):
            mask = state.joint_mask()
        log.append((t, j, cost_value))
        stalls = stalls + 1 if int(mask.sum()) <= before else 0
        if stalls >= 2:
            break

    hits_after = int(mask.sum())
    return MultiTargetResult(
        targets=state.targets,
        strategies={t: Strategy(applied[t].copy(), cost=spent[t]) for t in state.targets},
        hits_before=hits_before,
        hits_after=hits_after,
        total_cost=total,
        satisfied=total <= budget + EPS_FEASIBILITY,
        rounds=len(log),
        applied=log,
    )
