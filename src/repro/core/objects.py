"""Object datasets interpreted as functions.

The paper's key idea (§3.2) is to flip the usual roles: each object
``p`` becomes the linear function ``f_p(q) = q . p`` over the query
domain, and each top-k query becomes an input point.  A
:class:`Dataset` therefore stores the object matrix and exposes it both
as points (rows) and as a function family that can be evaluated on
query points.

Ranking sense
-------------
Internally the library always uses the paper's formal convention —
*lower score wins* (Eq. 6).  Many applications state preferences the
other way ("higher utility is better", like the camera example of
Fig. 1); construct the dataset with ``sense="max"`` and the attribute
matrix is negated on the way in, which makes the two conventions
coincide.  Strategies are expressed in the *original* attribute space
and converted at the boundary (:meth:`Dataset.to_internal_strategy`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["Dataset"]

_SENSES = ("min", "max")


class Dataset:
    """A set of objects, each a point in d-dimensional attribute space.

    Parameters
    ----------
    attributes:
        ``(n, d)`` array of attribute values, in the user's convention.
    names:
        Optional attribute names (length ``d``); purely cosmetic but
        used by the DBMS layer and examples for readable reports.
    sense:
        ``"min"`` (paper default: lower score wins) or ``"max"``.
    """

    def __init__(
        self,
        attributes: np.ndarray,
        names: "Sequence[str] | None" = None,
        sense: str = "min",
    ) -> None:
        attributes = np.array(attributes, dtype=float)
        if attributes.ndim != 2:
            raise ValidationError(f"attributes must be 2-D, got shape {attributes.shape}")
        if not np.isfinite(attributes).all():
            raise ValidationError("attributes contain non-finite values")
        if sense not in _SENSES:
            raise ValidationError(f"sense must be one of {_SENSES}, got {sense!r}")
        self.sense = sense
        self._external = attributes
        self._sign = 1.0 if sense == "min" else -1.0
        if names is not None:
            names = list(names)
            if len(names) != attributes.shape[1]:
                raise ValidationError(
                    f"{len(names)} names for {attributes.shape[1]} attributes"
                )
        self.names = names

    # -- shape ----------------------------------------------------------
    @property
    def n(self) -> int:
        return self._external.shape[0]

    @property
    def dim(self) -> int:
        return self._external.shape[1]

    def __len__(self) -> int:
        return self.n

    # -- views ----------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """Objects in the user's convention (read-only view)."""
        view = self._external.view()
        view.setflags(write=False)
        return view

    @property
    def matrix(self) -> np.ndarray:
        """Objects in the internal min-convention (read-only).

        Identical to :attr:`points` when ``sense="min"``; negated when
        ``sense="max"``.
        """
        internal = self._sign * self._external
        internal.setflags(write=False)
        return internal

    def point(self, object_id: int) -> np.ndarray:
        """One object's attribute vector (user convention, copied)."""
        self._check_id(object_id)
        return self._external[object_id].copy()

    # -- functions view ---------------------------------------------------
    def evaluate(self, query: np.ndarray) -> np.ndarray:
        """All function values ``f_p(query)`` in internal convention."""
        query = np.asarray(query, dtype=float)
        if query.shape != (self.dim,):
            raise ValidationError(f"query shape {query.shape} != ({self.dim},)")
        return self.matrix @ query

    # -- strategy conversion ----------------------------------------------
    def to_internal_strategy(self, s: np.ndarray) -> np.ndarray:
        """External strategy vector -> internal (min-convention) vector."""
        s = np.asarray(s, dtype=float)
        if s.shape != (self.dim,):
            raise ValidationError(f"strategy shape {s.shape} != ({self.dim},)")
        return self._sign * s

    def to_external_strategy(self, s: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`to_internal_strategy` (an involution)."""
        return self.to_internal_strategy(s)

    # -- mutation ---------------------------------------------------------
    def with_object(self, attributes: np.ndarray) -> tuple["Dataset", int]:
        """A new dataset with one object appended; returns (dataset, id)."""
        attributes = np.asarray(attributes, dtype=float)
        if attributes.shape != (self.dim,):
            raise ValidationError(f"object shape {attributes.shape} != ({self.dim},)")
        stacked = np.vstack([self._external, attributes[None, :]])
        return Dataset(stacked, names=self.names, sense=self.sense), self.n

    def without_object(self, object_id: int) -> "Dataset":
        """A new dataset with one object removed (ids above shift down)."""
        self._check_id(object_id)
        mask = np.ones(self.n, dtype=bool)
        mask[object_id] = False
        return Dataset(self._external[mask], names=self.names, sense=self.sense)

    def replaced(self, object_id: int, attributes: np.ndarray) -> "Dataset":
        """A new dataset with one object's attributes replaced."""
        self._check_id(object_id)
        attributes = np.asarray(attributes, dtype=float)
        if attributes.shape != (self.dim,):
            raise ValidationError(f"object shape {attributes.shape} != ({self.dim},)")
        out = self._external.copy()
        out[object_id] = attributes
        return Dataset(out, names=self.names, sense=self.sense)

    def improved(self, object_id: int, s: np.ndarray) -> "Dataset":
        """A new dataset where strategy ``s`` (external) was applied."""
        return self.replaced(object_id, self.point(object_id) + np.asarray(s, dtype=float))

    # -- helpers ----------------------------------------------------------
    def _check_id(self, object_id: int) -> None:
        if not 0 <= object_id < self.n:
            raise ValidationError(f"object id {object_id} out of range [0, {self.n})")

    def __repr__(self) -> str:
        return f"Dataset(n={self.n}, dim={self.dim}, sense={self.sense!r})"
