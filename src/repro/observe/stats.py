"""The ambient stage recorder behind ``EXPLAIN ANALYZE``.

Instrumentation sites in the solver hot paths (the engine's plan step,
candidate generation, hit evaluation, the greedy loops) call
:func:`stage` and :func:`tally` unconditionally.  Both consult the
module-global *active recorder*:

* **inactive** (the default, every plain query) — :func:`stage` returns
  a shared no-op context manager and :func:`tally` returns immediately,
  so instrumentation costs one global read on the hot path and records
  nothing;
* **active** (inside ``engine.analyze`` / ``EXPLAIN ANALYZE``) — stage
  wall-clock and counters accumulate into the
  :class:`StageRecorder` installed by :func:`observing`.

The recorder only ever *reads the clock and counts* — it has no access
to solver state — which is the structural argument (enforced end to end
by ``repro check --analyze``) that analyzed runs are byte-identical to
plain runs.

Stages nest: candidate generation scores its batch with the evaluator,
so ``evaluate`` seconds accumulated inside that call are *also* part of
``candidates`` seconds.  Per-stage numbers are honest wall-clock per
instrumented region, not an exclusive-time partition of the run.

The active recorder is process-global and not re-entrant across
threads: ``analyze`` is the engine's serial API (pool workers are
separate processes and never observe the parent's recorder).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.observe.clock import now

__all__ = ["COUNTERS", "STAGES", "StageRecorder", "observing", "stage", "tally"]

#: The instrumented phases, in execution order.  ``plan`` is the plan
#: step (solver resolution, boundary internalization, index snapshot);
#: ``candidates`` is Eq. 13-14 candidate generation; ``evaluate`` is
#: ESE/RTA hit evaluation; ``solve`` is the whole solver run.
STAGES = ("plan", "candidates", "evaluate", "solve")

#: The tallied work counters: candidate strategies scored, full hit
#: evaluations performed, greedy iterations applied.
COUNTERS = ("candidates", "evaluations", "iterations")


@dataclass
class StageRecorder:
    """Accumulated per-stage wall-clock and work counters for one run."""

    seconds: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def add_seconds(self, name: str, elapsed: float) -> None:
        """Accumulate ``elapsed`` wall-clock seconds onto stage ``name``."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def add_count(self, name: str, n: int) -> None:
        """Add ``n`` to the work counter ``name``."""
        self.counts[name] = self.counts.get(name, 0) + n

    def stage_seconds(self, name: str) -> float:
        """Total seconds recorded for stage ``name`` (0.0 if never entered)."""
        return self.seconds.get(name, 0.0)

    def count(self, name: str) -> int:
        """Value of counter ``name`` (0 if never bumped)."""
        return self.counts.get(name, 0)


#: The active recorder; ``None`` keeps every instrumentation site a no-op.
_ACTIVE: StageRecorder | None = None


class _NullStage:
    """Shared do-nothing context manager for the inactive path."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


class _Stage:
    """One timed region attributed to a named stage of a recorder."""

    __slots__ = ("_recorder", "_name", "_started")

    def __init__(self, recorder: StageRecorder, name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_Stage":
        self._started = now()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._recorder.add_seconds(self._name, now() - self._started)
        return False


_NULL = _NullStage()


def stage(name: str) -> "_Stage | _NullStage":
    """Context manager timing a region under ``name`` (no-op when inactive)."""
    recorder = _ACTIVE
    if recorder is None:
        return _NULL
    return _Stage(recorder, name)


def tally(name: str, n: int = 1) -> None:
    """Bump the active recorder's ``name`` counter (no-op when inactive)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.add_count(name, n)


@contextmanager
def observing(recorder: StageRecorder) -> Iterator[StageRecorder]:
    """Install ``recorder`` as the active recorder for the block.

    Nesting restores the previous recorder on exit, so an analyzed call
    inside an already-observed region attributes its stages to the inner
    recorder only.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous
