"""Runtime observability: stage timing, run stats, and planner feedback.

This package is the *only* place in the library allowed to read the
process's monotonic wall clock (lint rule **RPR014**, the RPR013
registry pattern applied to timing): every other module that wants a
timestamp — the bench harness, the serving front end, the engine's
``EXPLAIN ANALYZE`` path — imports :mod:`repro.observe.clock` instead
of calling :func:`time.perf_counter` directly.  Confined timing is what
makes the "analyzed runs are byte-identical to plain runs" contract
checkable: the instrumentation can only ever *read the clock and count*,
never touch solver state.

Layers, bottom to top:

* :mod:`repro.observe.clock` — the clock itself (``now``, ``Stopwatch``,
  ``time_call``).
* :mod:`repro.observe.stats` — the ambient :class:`StageRecorder`:
  solver hot paths mark stages (``plan``/``candidates``/``evaluate``/
  ``solve``) and bump counters through module functions that are no-ops
  unless a recorder was activated with :func:`observing`.
* :mod:`repro.observe.store` — the persisted :class:`StatsStore`:
  analyzed runs are recorded under a workload-shape fingerprint, as JSON
  when a path is configured (``--stats`` / ``REPRO_STATS``).
* :mod:`repro.observe.feedback` — the feedback planner rules:
  ``method="auto"`` (and an ``auto``-kernel hint) choose from recorded
  medians, and every choice carries a note citing the stat behind it.
"""

from repro.observe.clock import Stopwatch, now, time_call
from repro.observe.feedback import Choice, choose_kernel, choose_method, knob_advisories
from repro.observe.stats import (
    COUNTERS,
    STAGES,
    StageRecorder,
    observing,
    stage,
    tally,
)
from repro.observe.store import (
    StatsStore,
    configure_store,
    default_store,
    workload_fingerprint,
)

__all__ = [
    "COUNTERS",
    "Choice",
    "STAGES",
    "StageRecorder",
    "StatsStore",
    "Stopwatch",
    "choose_kernel",
    "choose_method",
    "configure_store",
    "default_store",
    "knob_advisories",
    "now",
    "observing",
    "stage",
    "tally",
    "time_call",
    "workload_fingerprint",
]
