"""Feedback planner rules: recorded runtime stats → plan knob choices.

Each rule reads the :class:`~repro.observe.store.StatsStore` and returns
a :class:`Choice` — the chosen value *plus a note citing the stat that
justified it*.  The engine appends that note to ``plan.notes``, so an
``EXPLAIN`` of an auto-planned query always shows its evidence; a rule
with no recorded evidence says so explicitly and falls back to the
static default.  Rules never mutate the store and never touch solver
state: they only turn medians into knob values, which keeps the
feedback layer inside the byte-identical-results contract (the chosen
knobs change *how fast* a query runs, and for ``method`` which
documented scheme answers it — never the scheme's own semantics).

The rules are deliberately conservative: a knob is only moved off its
requested/default value when the store has seen *competing* values for
this workload fingerprint, so cold stores behave exactly like the
static planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.observe.store import StatsStore

__all__ = ["Choice", "choose_kernel", "choose_method", "knob_advisories"]

#: Static default used when a fingerprint has no recorded runs.
FALLBACK_METHOD = "efficient"


@dataclass(frozen=True)
class Choice:
    """One feedback decision: the value and the stat-citing note."""

    value: str
    note: str


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def choose_method(
    store: StatsStore, fingerprint: str, allowed: Iterable[str]
) -> Choice:
    """Resolve ``method="auto"``: the fastest recorded median, or the default.

    ``allowed`` is the set of currently-registered solver names; stale
    store entries for since-removed solvers are ignored rather than
    crashing the dispatch they would fail.
    """
    permitted = set(allowed)
    ranked = [
        entry for entry in store.method_medians(fingerprint) if entry[0] in permitted
    ]
    if not ranked:
        return Choice(
            FALLBACK_METHOD,
            f"auto method={FALLBACK_METHOD}: no recorded runs for "
            f"fingerprint {fingerprint}",
        )
    method, median, runs = ranked[0]
    return Choice(
        method,
        f"auto method={method}: fastest median {_fmt_ms(median)} over "
        f"{runs} analyzed run{'s' if runs != 1 else ''} for fingerprint {fingerprint}",
    )


def choose_kernel(
    store: StatsStore, fingerprint: str, available: Iterable[str]
) -> Choice | None:
    """Resolve ``kernel="auto"`` from recorded backend timings, if any.

    Returns ``None`` — keep the availability-based default — unless the
    store has seen at least two distinct backends for this fingerprint
    (one backend recorded proves nothing about the alternative) and the
    fastest one is still available in this process.
    """
    ranked = store.knob_medians(fingerprint, "kernel")
    if len(ranked) < 2:
        return None
    usable = set(available)
    for kernel, median, runs in ranked:
        if kernel in usable:
            return Choice(
                kernel,
                f"auto kernel={kernel}: fastest median {_fmt_ms(median)} over "
                f"{runs} analyzed run{'s' if runs != 1 else ''} "
                f"(of {len(ranked)} recorded backends) for fingerprint {fingerprint}",
            )
    return None


def knob_advisories(store: StatsStore, fingerprint: str) -> Iterator[Choice]:
    """Advisory notes for the pool/shard knobs the engine cannot re-wire.

    ``workers`` and ``shards`` are fixed when the engine (and its index)
    is built, so per-request feedback cannot act on them — but it *can*
    tell the operator which recorded value was fastest.  One advisory
    per knob, only when competing values were recorded.
    """
    for knob in ("workers", "shards"):
        ranked = store.knob_medians(fingerprint, knob)
        if len(ranked) < 2:
            continue
        value, median, runs = ranked[0]
        yield Choice(
            value,
            f"stats advise {knob}={value}: fastest median {_fmt_ms(median)} over "
            f"{runs} analyzed run{'s' if runs != 1 else ''} "
            f"(of {len(ranked)} recorded values) for fingerprint {fingerprint}",
        )
