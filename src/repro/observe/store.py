"""The persisted runtime-stats store feeding the feedback planner.

Every ``EXPLAIN ANALYZE`` run records one entry — solver method, total
seconds, evaluation count, resolved kernel backend, pool/shard shape —
under a *workload fingerprint*: the query kind plus the index's mode,
sense, dimensionality, and size buckets.  Sizes are bucketed to powers
of two so a 24-object workload and a 30-object workload share stats (a
planner that only recognizes byte-identical workloads never has data),
while a 10x larger one does not.

The store is JSON on disk when constructed with a path (CLI ``--stats``
or the ``REPRO_STATS`` environment variable) and memory-only otherwise;
either way the feedback rules in :mod:`repro.observe.feedback` read it
through the same API.  Samples per (fingerprint, method) are capped at
:data:`MAX_SAMPLES`, keeping the newest — the feedback medians should
track the current machine, not the file's whole history.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Protocol

__all__ = [
    "MAX_SAMPLES",
    "STATS_SCHEMA",
    "StatsStore",
    "configure_store",
    "default_store",
    "workload_fingerprint",
]

#: Schema tag written into every persisted stats file.
STATS_SCHEMA = "repro-stats/1"

#: Newest samples kept per (fingerprint, method).
MAX_SAMPLES = 32

#: Environment variable naming the default store's JSON path.
STATS_ENV = "REPRO_STATS"


class _DatasetLike(Protocol):  # pragma: no cover - typing only
    n: int
    dim: int
    sense: str


class _IndexLike(Protocol):  # pragma: no cover - typing only
    @property
    def dataset(self) -> _DatasetLike: ...

    @property
    def mode(self) -> str: ...

    @property
    def shards(self) -> int: ...


def _bucket(count: int) -> int:
    """Smallest power of two >= count (0 and 1 map to themselves)."""
    if count <= 1:
        return max(count, 0)
    return 1 << (count - 1).bit_length()


def workload_fingerprint(index: _IndexLike, kind: str) -> str:
    """The stats-store key for one query kind against one index shape.

    Deliberately excludes the solver method and the kernel backend —
    those are the *dimensions being compared* under the key — and the
    index epoch: mutations move answers, not the relative cost of the
    processing schemes.
    """
    dataset = index.dataset
    queries = index.queries  # type: ignore[attr-defined]
    return (
        f"kind={kind}|mode={index.mode}|sense={dataset.sense}"
        f"|d={dataset.dim}|n={_bucket(dataset.n)}|m={_bucket(queries.m)}"
    )


class StatsStore:
    """Recorded analyzed-run samples, keyed by workload fingerprint.

    Thread-safe for the serving layer (a reader thread and a dispatch
    loop may both touch the process-default store); persistence is
    explicit via :meth:`save` and automatic after every :meth:`record`
    when the store has a path.
    """

    def __init__(self, path: "str | os.PathLike[str] | None" = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._lock = threading.Lock()
        self._workloads: dict[str, dict[str, list[dict[str, Any]]]] = {}
        if self.path is not None and os.path.exists(self.path):
            self._load(self.path)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("schema") != STATS_SCHEMA:
            # A foreign or future file must not silently poison the
            # feedback medians; start fresh and overwrite on save.
            return
        workloads = payload.get("workloads", {})
        if isinstance(workloads, dict):
            self._workloads = {
                str(fingerprint): {
                    str(method): [dict(sample) for sample in samples][-MAX_SAMPLES:]
                    for method, samples in methods.items()
                    if isinstance(samples, list)
                }
                for fingerprint, methods in workloads.items()
                if isinstance(methods, dict)
            }

    def save(self) -> None:
        """Write the store to its path (no-op for memory-only stores)."""
        if self.path is None:
            return
        # Snapshot under the lock, write after release (RPR011): file
        # I/O must not stall a serving thread reading the medians.
        payload = self.as_dict()
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot (what :meth:`save` persists)."""
        with self._lock:
            return {
                "schema": STATS_SCHEMA,
                "workloads": {
                    fingerprint: {m: list(s) for m, s in methods.items()}
                    for fingerprint, methods in self._workloads.items()
                },
            }

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, plan: Any) -> None:
        """Record one analyzed run (an ``ExecutedPlan``) and persist.

        Accepts any object with the executed-plan surface (duck-typed so
        this layer never imports :mod:`repro.core`): ``fingerprint``,
        ``solver_name``, ``total_seconds``, ``evaluations``,
        ``kernel_backend``, ``workers``, ``shards``.
        """
        fingerprint = str(plan.fingerprint)
        if not fingerprint:
            return
        sample = {
            "seconds": float(plan.total_seconds),
            "evaluations": int(plan.evaluations),
            "kernel": str(plan.kernel_backend),
            "workers": int(plan.workers),
            "shards": int(plan.shards),
        }
        with self._lock:
            methods = self._workloads.setdefault(fingerprint, {})
            samples = methods.setdefault(str(plan.solver_name), [])
            samples.append(sample)
            del samples[:-MAX_SAMPLES]
        self.save()

    # ------------------------------------------------------------------
    # Reading (the feedback rules' API)
    # ------------------------------------------------------------------
    def fingerprints(self) -> list[str]:
        """Sorted workload fingerprints with at least one recorded run."""
        with self._lock:
            return sorted(self._workloads)

    def samples(self, fingerprint: str) -> dict[str, list[dict[str, Any]]]:
        """Per-method sample lists recorded under ``fingerprint``."""
        with self._lock:
            methods = self._workloads.get(fingerprint, {})
            return {method: list(samples) for method, samples in methods.items()}

    def method_medians(self, fingerprint: str) -> list[tuple[str, float, int]]:
        """``(method, median_seconds, runs)`` sorted fastest first.

        Ties break toward the method name, so the choice is stable
        across runs with equal medians.
        """
        out = []
        for method, samples in self.samples(fingerprint).items():
            if samples:
                out.append((method, _median(s["seconds"] for s in samples), len(samples)))
        return sorted(out, key=lambda item: (item[1], item[0]))

    def knob_medians(self, fingerprint: str, knob: str) -> list[tuple[str, float, int]]:
        """``(value, median_seconds, runs)`` per recorded ``knob`` value.

        ``knob`` is a sample field (``kernel``, ``workers``, ``shards``);
        values are compared across *all* methods recorded under the
        fingerprint, sorted fastest first.
        """
        groups: dict[str, list[float]] = {}
        for samples in self.samples(fingerprint).values():
            for sample in samples:
                if knob in sample:
                    groups.setdefault(str(sample[knob]), []).append(float(sample["seconds"]))
        out = [(value, _median(seconds), len(seconds)) for value, seconds in groups.items()]
        return sorted(out, key=lambda item: (item[1], item[0]))


def _median(values: Any) -> float:
    ordered = sorted(float(v) for v in values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


#: Process-default store, created lazily from ``REPRO_STATS``.
_DEFAULT: StatsStore | None = None


def default_store() -> StatsStore:
    """The process-default stats store (memory-only without ``REPRO_STATS``)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = StatsStore(os.environ.get(STATS_ENV) or None)
    return _DEFAULT


def configure_store(path: "str | os.PathLike[str] | None") -> StatsStore:
    """Rebind the process-default store (CLI ``--stats``); returns it."""
    global _DEFAULT
    _DEFAULT = StatsStore(path)
    return _DEFAULT
