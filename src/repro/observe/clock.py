"""The library's wall clock — the sole legal home of ``perf_counter``.

Lint rule **RPR014** rejects monotonic-clock calls anywhere outside
``repro/observe``; everything that measures time (the bench harness,
the serving stats, the ``EXPLAIN ANALYZE`` recorder) routes through
these three primitives.  Keeping the clock behind one seam means a test
or a differential harness can reason about *every* timing side effect
in the codebase by reading this file.
"""

from __future__ import annotations

import time
from typing import Any, Callable, TypeVar

__all__ = ["Stopwatch", "now", "time_call"]

_T = TypeVar("_T")


def now() -> float:
    """Monotonic wall-clock seconds (arbitrary epoch; differences only)."""
    return time.perf_counter()


class Stopwatch:
    """Accumulating wall-clock timer (re-enterable context manager)."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._started = now()
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._started is not None:
            self.elapsed += now() - self._started
        self._started = None
        return False


def time_call(fn: Callable[..., _T], *args: Any, **kwargs: Any) -> tuple[_T, float]:
    """``(result, seconds)`` of one call."""
    start = now()
    result = fn(*args, **kwargs)
    return result, now() - start
