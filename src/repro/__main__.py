"""Entry point: ``python -m repro`` runs the analytic-tool CLI."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
