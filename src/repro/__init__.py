"""repro — reproduction of "Querying Improvement Strategies" (EDBT 2017).

Given a dataset of objects and a workload of top-k preference queries,
an *improvement strategy* adjusts a target object's attributes so that
it appears in more query results.  This library implements the paper's
two Improvement Queries — Min-Cost (cheapest strategy reaching a hit
goal) and Max-Hit (most hits within a budget) — together with the
subdomain index, Efficient Strategy Evaluation, the published
baselines, every substrate (R-tree, dominant graph, LP solver, ...),
data generators, a mini DBMS integration, and a benchmark harness that
regenerates each figure of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import Dataset, QuerySet, ImprovementQueryEngine

    objects = Dataset(np.random.rand(50, 3))
    queries = QuerySet(np.random.rand(200, 3), ks=5)
    engine = ImprovementQueryEngine(objects, queries)
    result = engine.min_cost(target=7, tau=20)
    print(result.strategy.vector, result.total_cost, result.hits_after)
"""

from repro.core import (
    AsymmetricLinearCost,
    CallableCost,
    CostFunction,
    Dataset,
    GenericSpace,
    ImprovementQueryEngine,
    IQResult,
    L1Cost,
    L2Cost,
    LInfCost,
    QuerySet,
    Strategy,
    StrategySpace,
    SubdomainIndex,
    UtilityFamily,
    distance_family,
    euclidean_cost,
    polynomial_family,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "QuerySet",
    "ImprovementQueryEngine",
    "IQResult",
    "Strategy",
    "StrategySpace",
    "SubdomainIndex",
    "CostFunction",
    "L1Cost",
    "L2Cost",
    "LInfCost",
    "AsymmetricLinearCost",
    "CallableCost",
    "euclidean_cost",
    "UtilityFamily",
    "GenericSpace",
    "polynomial_family",
    "distance_family",
    "ReproError",
    "__version__",
]
