"""Recursive-descent parser for the mini-DBMS SQL dialect.

Grammar (informal)::

    statement   := create_table | drop | insert | select | update
                 | delete | show | describe | create_iq_index | improve
                 | explain_improve
    expr        := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | comparison
    comparison  := additive (CMP additive)?
    additive    := term (('+'|'-') term)*
    term        := factor (('*'|'/') factor)*
    factor      := '-' factor | NUMBER | STRING | NULL | IDENT | '(' expr ')'

Statements end at ';' or EOF; ``parse_script`` handles multi-statement
input.
"""

from __future__ import annotations

from repro.dbms import ast_nodes as ast
from repro.dbms.lexer import Token, tokenize
from repro.errors import SQLSyntaxError

__all__ = ["parse", "parse_script"]


def parse(sql: str):
    """Parse a single statement (a trailing ';' is allowed)."""
    statements = parse_script(sql)
    if len(statements) != 1:
        raise SQLSyntaxError(f"expected exactly one statement, got {len(statements)}")
    return statements[0]


def parse_script(sql: str) -> list:
    """Parse a ';'-separated script into a list of statements."""
    parser = _Parser(tokenize(sql))
    statements = []
    while not parser.at("EOF"):
        statements.append(parser.statement())
        while parser.accept_punct(";"):
            pass
    return statements


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def at(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def at_keyword(self, *words: str) -> bool:
        return self.peek().kind == "KEYWORD" and self.peek().value in words

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise SQLSyntaxError(f"expected {word}, got {self.peek().value!r}")
        return self.advance()

    def expect_punct(self, value: str) -> Token:
        if not self.at("PUNCT", value):
            raise SQLSyntaxError(f"expected {value!r}, got {self.peek().value!r}")
        return self.advance()

    def accept_punct(self, value: str) -> bool:
        if self.at("PUNCT", value):
            self.advance()
            return True
        return False

    def accept_keyword(self, *words: str) -> Token | None:
        if self.at_keyword(*words):
            return self.advance()
        return None

    def identifier(self) -> str:
        token = self.peek()
        if token.kind == "IDENT":
            return self.advance().value
        # Allow non-reserved-ish keywords as identifiers where harmless.
        raise SQLSyntaxError(f"expected identifier, got {token.value!r}")

    def number(self) -> float:
        token = self.peek()
        sign = 1.0
        if self.at("PUNCT", "-"):
            self.advance()
            sign = -1.0
            token = self.peek()
        if token.kind != "NUMBER":
            raise SQLSyntaxError(f"expected number, got {token.value!r}")
        return sign * float(self.advance().value)

    # -- statements -------------------------------------------------------
    def statement(self):
        if self.at_keyword("CREATE"):
            return self.create()
        if self.at_keyword("DROP"):
            return self.drop()
        if self.at_keyword("INSERT"):
            return self.insert()
        if self.at_keyword("SELECT"):
            return self.select()
        if self.at_keyword("UPDATE"):
            return self.update()
        if self.at_keyword("DELETE"):
            return self.delete()
        if self.at_keyword("SHOW"):
            self.advance()
            self.expect_keyword("TABLES")
            return ast.ShowTables()
        if self.at_keyword("DESCRIBE"):
            self.advance()
            return ast.Describe(self.identifier())
        if self.at_keyword("IMPROVE"):
            return self.improve()
        if self.at_keyword("EXPLAIN"):
            self.advance()
            analyze = False
            if self.at_keyword("ANALYZE"):
                self.advance()
                analyze = True
            if not self.at_keyword("IMPROVE"):
                raise SQLSyntaxError("EXPLAIN supports only IMPROVE statements")
            statement = self.improve()
            if statement.apply:
                raise SQLSyntaxError("EXPLAIN IMPROVE cannot take APPLY")
            return ast.ExplainImprove(statement=statement, analyze=analyze)
        raise SQLSyntaxError(f"unexpected token {self.peek().value!r}")

    def create(self):
        self.expect_keyword("CREATE")
        if self.at_keyword("TABLE"):
            self.advance()
            name = self.identifier()
            self.expect_punct("(")
            columns = []
            while True:
                col = self.identifier()
                type_token = self.accept_keyword("INT", "INTEGER", "FLOAT", "REAL", "TEXT")
                if type_token is None:
                    raise SQLSyntaxError(f"expected column type, got {self.peek().value!r}")
                columns.append((col, type_token.value))
                if not self.accept_punct(","):
                    break
            self.expect_punct(")")
            return ast.CreateTable(name=name, columns=columns)
        if self.at_keyword("IMPROVEMENT"):
            return self.create_improvement_index()
        raise SQLSyntaxError("CREATE must be followed by TABLE or IMPROVEMENT INDEX")

    def drop(self):
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        return ast.DropTable(self.identifier())

    def insert(self):
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.identifier()
        self.expect_keyword("VALUES")
        rows = []
        while True:
            self.expect_punct("(")
            values = [self.expression()]
            while self.accept_punct(","):
                values.append(self.expression())
            self.expect_punct(")")
            rows.append(values)
            if not self.accept_punct(","):
                break
        return ast.Insert(table=table, rows=rows)

    def select(self):
        self.expect_keyword("SELECT")
        if self.accept_punct("*"):
            columns = None
        else:
            columns = [self.identifier()]
            while self.accept_punct(","):
                columns.append(self.identifier())
        self.expect_keyword("FROM")
        table = self.identifier()
        where = self.optional_where()
        order_by = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            column = self.identifier()
            ascending = True
            if self.accept_keyword("DESC"):
                ascending = False
            else:
                self.accept_keyword("ASC")
            order_by = (column, ascending)
        limit = None
        if self.accept_keyword("LIMIT"):
            limit = int(self.number())
        return ast.Select(table=table, columns=columns, where=where, order_by=order_by, limit=limit)

    def update(self):
        self.expect_keyword("UPDATE")
        table = self.identifier()
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.identifier()
            if not (self.at("OP", "=")):
                raise SQLSyntaxError(f"expected '=', got {self.peek().value!r}")
            self.advance()
            assignments.append((column, self.expression()))
            if not self.accept_punct(","):
                break
        return ast.Update(table=table, assignments=assignments, where=self.optional_where())

    def delete(self):
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.identifier()
        return ast.Delete(table=table, where=self.optional_where())

    def optional_where(self):
        if self.accept_keyword("WHERE"):
            return self.expression()
        return None

    # -- improvement extension ---------------------------------------------
    def create_improvement_index(self):
        self.expect_keyword("IMPROVEMENT")
        self.expect_keyword("INDEX")
        name = self.identifier()
        self.expect_keyword("ON")
        object_table = self.identifier()
        attribute_columns = self.column_list()
        self.expect_keyword("USING")
        self.expect_keyword("QUERIES")
        query_table = self.identifier()
        query_columns = self.column_list()
        if len(query_columns) != len(attribute_columns) + 1:
            raise SQLSyntaxError(
                "the query column list must supply one weight per attribute plus the k column"
            )
        sense = "min"
        if self.accept_keyword("SENSE"):
            token = self.accept_keyword("MIN", "MAX")
            if token is None:
                raise SQLSyntaxError("SENSE must be MIN or MAX")
            sense = token.value.lower()
        return ast.CreateImprovementIndex(
            name=name,
            object_table=object_table,
            attribute_columns=attribute_columns,
            query_table=query_table,
            weight_columns=query_columns[:-1],
            k_column=query_columns[-1],
            sense=sense,
        )

    def column_list(self) -> list[str]:
        self.expect_punct("(")
        columns = [self.identifier()]
        while self.accept_punct(","):
            columns.append(self.identifier())
        self.expect_punct(")")
        return columns

    def improve(self):
        self.expect_keyword("IMPROVE")
        table = self.identifier()
        self.expect_keyword("TARGET")
        self.expect_keyword("WHERE")
        where = self.expression()
        self.expect_keyword("USING")
        index = self.identifier()
        reach = None
        budget = None
        cost = "L2"
        adjust = []
        method = "efficient"
        kernel = None
        apply = False
        while True:
            if self.accept_keyword("REACH"):
                reach = int(self.number())
            elif self.accept_keyword("BUDGET"):
                budget = self.number()
            elif self.accept_keyword("COST"):
                cost = self.identifier().upper()
            elif self.accept_keyword("METHOD"):
                method = self.identifier().lower()
            elif self.accept_keyword("KERNEL"):
                kernel = self.identifier().lower()
            elif self.accept_keyword("APPLY"):
                apply = True
            elif self.accept_keyword("ADJUST"):
                adjust.extend(self.adjust_items())
            else:
                break
        if (reach is None) == (budget is None):
            raise SQLSyntaxError("IMPROVE needs exactly one of REACH <n> or BUDGET <x>")
        return ast.Improve(
            table=table,
            where=where,
            index=index,
            reach=reach,
            budget=budget,
            cost=cost,
            adjust=adjust,
            method=method,
            kernel=kernel,
            apply=apply,
        )

    def adjust_items(self) -> list[ast.AdjustClause]:
        items = []
        while True:
            column = self.identifier()
            if self.accept_keyword("FROZEN"):
                items.append(ast.AdjustClause(column=column, frozen=True))
            elif self.accept_keyword("BETWEEN"):
                lower = self.number()
                self.expect_keyword("AND")
                upper = self.number()
                items.append(ast.AdjustClause(column=column, lower=lower, upper=upper))
            else:
                raise SQLSyntaxError("ADJUST item must be '<col> FROZEN' or '<col> BETWEEN a AND b'")
            if not self.accept_punct(","):
                break
        return items

    # -- expressions --------------------------------------------------------
    def expression(self):
        return self.or_expr()

    def or_expr(self):
        left = self.and_expr()
        while self.accept_keyword("OR"):
            left = ast.Binary("OR", left, self.and_expr())
        return left

    def and_expr(self):
        left = self.not_expr()
        while self.accept_keyword("AND"):
            left = ast.Binary("AND", left, self.not_expr())
        return left

    def not_expr(self):
        if self.accept_keyword("NOT"):
            return ast.Unary("NOT", self.not_expr())
        return self.comparison()

    def comparison(self):
        left = self.additive()
        if self.peek().kind == "OP":
            op = self.advance().value
            return ast.Binary(op, left, self.additive())
        return left

    def additive(self):
        left = self.term()
        while self.at("PUNCT", "+") or self.at("PUNCT", "-"):
            op = self.advance().value
            left = ast.Binary(op, left, self.term())
        return left

    def term(self):
        left = self.factor()
        while self.at("PUNCT", "*") or self.at("PUNCT", "/"):
            op = self.advance().value
            left = ast.Binary(op, left, self.factor())
        return left

    def factor(self):
        if self.accept_punct("-"):
            return ast.Unary("-", self.factor())
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value)
            if value.is_integer() and "." not in token.value and "e" not in token.value.lower():
                return ast.Literal(int(value))
            return ast.Literal(value)
        if token.kind == "STRING":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "KEYWORD" and token.value == "NULL":
            self.advance()
            return ast.Literal(None)
        if token.kind == "IDENT":
            self.advance()
            return ast.ColumnRef(token.value)
        if self.accept_punct("("):
            inner = self.expression()
            self.expect_punct(")")
            return inner
        raise SQLSyntaxError(f"unexpected token {token.value!r} in expression")
