"""Tables, columns, and the schema catalog of the mini DBMS."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SQLCatalogError, SQLExecutionError

__all__ = ["Column", "Table", "Catalog"]

_TYPES = {"INT": int, "INTEGER": int, "FLOAT": float, "REAL": float, "TEXT": str}


@dataclass(frozen=True)
class Column:
    name: str
    type_name: str  #: INT | FLOAT | TEXT (INTEGER/REAL normalize)

    def __post_init__(self):
        canonical = {"INTEGER": "INT", "REAL": "FLOAT"}.get(self.type_name, self.type_name)
        if canonical not in ("INT", "FLOAT", "TEXT"):
            raise SQLCatalogError(f"unknown column type {self.type_name!r}")
        object.__setattr__(self, "type_name", canonical)

    def coerce(self, value):
        """Coerce a literal to the column type; None passes through."""
        if value is None:
            return None
        if self.type_name == "INT":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SQLExecutionError(f"column {self.name}: expected a number, got {value!r}")
            if isinstance(value, float) and not value.is_integer():
                raise SQLExecutionError(f"column {self.name}: {value} is not an integer")
            return int(value)
        if self.type_name == "FLOAT":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SQLExecutionError(f"column {self.name}: expected a number, got {value!r}")
            return float(value)
        if not isinstance(value, str):
            raise SQLExecutionError(f"column {self.name}: expected text, got {value!r}")
        return value


@dataclass
class Table:
    """An in-memory heap table with insertion-order row ids."""

    name: str
    columns: list  #: [Column, ...]
    rows: list = field(default_factory=list)  #: list of value lists
    version: int = 0  #: bumped on every mutation (index staleness checks)

    def __post_init__(self):
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SQLCatalogError(f"table {self.name}: duplicate column names")

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        """Position of a column by name (SQLCatalogError if absent)."""
        for i, column in enumerate(self.columns):
            if column.name == name:
                return i
        raise SQLCatalogError(f"table {self.name}: no column {name!r}")

    def insert(self, values: list) -> int:
        """Append a row (type-coerced); returns its rowid."""
        if len(values) != len(self.columns):
            raise SQLExecutionError(
                f"table {self.name}: expected {len(self.columns)} values, got {len(values)}"
            )
        row = [col.coerce(v) for col, v in zip(self.columns, values)]
        self.rows.append(row)
        self.version += 1
        return len(self.rows) - 1

    def update_cell(self, row_id: int, column: str, value) -> None:
        """Overwrite one cell (type-coerced)."""
        idx = self.column_index(column)
        self.rows[row_id][idx] = self.columns[idx].coerce(value)
        self.version += 1

    def delete_rows(self, row_ids) -> int:
        """Delete the given rowids; returns the number removed."""
        doomed = set(row_ids)
        before = len(self.rows)
        self.rows = [r for i, r in enumerate(self.rows) if i not in doomed]
        if len(self.rows) != before:
            self.version += 1
        return before - len(self.rows)

    def numeric_matrix(self, columns: list[str]):
        """Rows restricted to numeric columns as a list of float lists."""
        indices = [self.column_index(c) for c in columns]
        for c, i in zip(columns, indices):
            if self.columns[i].type_name == "TEXT":
                raise SQLExecutionError(f"column {c} is TEXT; numeric column required")
        out = []
        for row_id, row in enumerate(self.rows):
            values = [row[i] for i in indices]
            if any(v is None for v in values):
                raise SQLExecutionError(
                    f"table {self.name} row {row_id}: NULL in numeric column"
                )
            out.append([float(v) for v in values])
        return out


class Catalog:
    """The database schema: tables by name."""

    def __init__(self):
        self._tables: dict[str, Table] = {}

    def create(self, name: str, columns) -> Table:
        """Create a table (SQLCatalogError on duplicates)."""
        if name in self._tables:
            raise SQLCatalogError(f"table {name!r} already exists")
        table = Table(name=name, columns=list(columns))
        self._tables[name] = table
        return table

    def drop(self, name: str) -> None:
        """Drop a table (SQLCatalogError if absent)."""
        if name not in self._tables:
            raise SQLCatalogError(f"no table {name!r}")
        del self._tables[name]

    def get(self, name: str) -> Table:
        """Look up a table (SQLCatalogError if absent)."""
        table = self._tables.get(name)
        if table is None:
            raise SQLCatalogError(f"no table {name!r}")
        return table

    def names(self) -> list[str]:
        """Sorted table names."""
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables
