"""SQL tokenizer for the mini DBMS.

The paper implements its techniques "as an analytic tool integrated
with the DBMS" where users select targets via SQL.  This package is
that integration: a small but real in-memory SQL engine (DDL/DML/query)
extended with improvement-query statements.  The lexer produces a flat
token stream; keywords are case-insensitive, identifiers keep their
case, strings are single-quoted with ``''`` escaping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    # standard SQL subset
    "CREATE", "TABLE", "INSERT", "INTO", "VALUES", "SELECT", "FROM",
    "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT", "UPDATE", "SET",
    "DELETE", "AND", "OR", "NOT", "NULL", "SHOW", "TABLES", "DESCRIBE",
    "DROP", "AS",
    # types
    "INT", "INTEGER", "FLOAT", "REAL", "TEXT",
    # improvement-query extension
    "IMPROVEMENT", "INDEX", "ON", "USING", "QUERIES", "SENSE", "MIN",
    "MAX", "IMPROVE", "TARGET", "REACH", "BUDGET", "COST", "ADJUST",
    "BETWEEN", "FROZEN", "APPLY", "METHOD", "EXPLAIN", "ANALYZE", "KERNEL",
}

_PUNCT = {"(", ")", ",", "*", "+", "-", "/", ";", "."}
_COMPARISONS = {"=", "<", ">", "<=", ">=", "<>", "!="}


@dataclass(frozen=True)
class Token:
    kind: str  #: KEYWORD | IDENT | NUMBER | STRING | OP | PUNCT | EOF
    value: str
    position: int  #: character offset, for error messages

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            i, token = _read_string(sql, i)
            tokens.append(token)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            i, token = _read_number(sql, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            i, token = _read_word(sql, i)
            tokens.append(token)
            continue
        two = sql[i : i + 2]
        if two in _COMPARISONS:
            tokens.append(Token("OP", two, i))
            i += 2
            continue
        if ch in _COMPARISONS:
            tokens.append(Token("OP", ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[int, Token]:
    i = start + 1
    out = []
    while i < len(sql):
        ch = sql[i]
        if ch == "'":
            if sql[i : i + 2] == "''":  # escaped quote
                out.append("'")
                i += 2
                continue
            return i + 1, Token("STRING", "".join(out), start)
        out.append(ch)
        i += 1
    raise SQLSyntaxError(f"unterminated string starting at position {start}")


def _read_number(sql: str, start: int) -> tuple[int, Token]:
    i = start
    seen_dot = False
    seen_exp = False
    while i < len(sql):
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < len(sql) and sql[i] in "+-":
                i += 1
        else:
            break
    text = sql[start:i]
    try:
        float(text)
    except ValueError:
        raise SQLSyntaxError(f"bad number {text!r} at position {start}")
    return i, Token("NUMBER", text, start)


def _read_word(sql: str, start: int) -> tuple[int, Token]:
    i = start
    while i < len(sql) and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    word = sql[start:i]
    if word.upper() in KEYWORDS:
        return i, Token("KEYWORD", word.upper(), start)
    return i, Token("IDENT", word, start)
