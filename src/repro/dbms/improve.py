"""The IMPROVE extension: improvement queries from SQL.

Mirrors the paper's analytic tool (§6.1): the user selects target
objects via SQL, specifies which attributes may be adjusted and in what
range, picks a cost function, and issues a Min-Cost (``REACH n``) or
Max-Hit (``BUDGET x``) improvement query.

Index lifecycle: ``CREATE IMPROVEMENT INDEX`` records the object-table
attribute columns, the query-table weight/k columns, and the ranking
sense.  The engine is built lazily and rebuilt automatically when
either table's version counter moved (INSERT/UPDATE/DELETE bump it), so
IMPROVE always runs against current data.

Result shape: one row per target with the per-attribute deltas, the
total cost, hits before/after, and whether the goal was met.  With
``APPLY`` the deltas are also written back to the object table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import L1Cost, L2Cost, LInfCost
from repro.core.engine import ImprovementQueryEngine
from repro.core.objects import Dataset
from repro.core.plan import ANALYZE_FIELDS, PLAN_FIELDS
from repro.core.queries import QuerySet
from repro.core.strategy import StrategySpace
from repro.dbms import ast_nodes as ast
from repro.dbms.catalog import Catalog
from repro.errors import SQLCatalogError, SQLExecutionError, ValidationError
from repro.native import resolve_backend

__all__ = ["ImprovementService", "IndexDefinition"]

_COSTS = {"L1": L1Cost, "L2": L2Cost, "LINF": LInfCost}


@dataclass
class IndexDefinition:
    """Schema-level description of one improvement index."""

    name: str
    object_table: str
    attribute_columns: list
    query_table: str
    weight_columns: list
    k_column: str
    sense: str
    engine: ImprovementQueryEngine | None = None
    object_version: int = -1
    query_version: int = -1


class ImprovementService:
    """Owns improvement indexes and executes IMPROVE statements."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._indexes: dict[str, IndexDefinition] = {}

    # ------------------------------------------------------------------
    def create_index(self, stmt: ast.CreateImprovementIndex) -> None:
        """Register an improvement index (engine built lazily)."""
        if stmt.name in self._indexes:
            raise SQLCatalogError(f"improvement index {stmt.name!r} already exists")
        objects = self.catalog.get(stmt.object_table)
        queries = self.catalog.get(stmt.query_table)
        for column in stmt.attribute_columns:
            objects.column_index(column)
        for column in list(stmt.weight_columns) + [stmt.k_column]:
            queries.column_index(column)
        self._indexes[stmt.name] = IndexDefinition(
            name=stmt.name,
            object_table=stmt.object_table,
            attribute_columns=list(stmt.attribute_columns),
            query_table=stmt.query_table,
            weight_columns=list(stmt.weight_columns),
            k_column=stmt.k_column,
            sense=stmt.sense,
        )

    def forget_table(self, table_name: str) -> None:
        """Drop indexes referring to a dropped table."""
        doomed = [
            name
            for name, definition in self._indexes.items()
            if table_name in (definition.object_table, definition.query_table)
        ]
        for name in doomed:
            del self._indexes[name]

    # ------------------------------------------------------------------
    def _engine(self, definition: IndexDefinition) -> ImprovementQueryEngine:
        objects = self.catalog.get(definition.object_table)
        queries = self.catalog.get(definition.query_table)
        stale = (
            definition.engine is None
            or definition.object_version != objects.version
            or definition.query_version != queries.version
        )
        if stale:
            matrix = np.asarray(objects.numeric_matrix(definition.attribute_columns))
            if matrix.shape[0] == 0:
                raise SQLExecutionError(f"table {objects.name} is empty")
            weights_and_k = np.asarray(
                queries.numeric_matrix(definition.weight_columns + [definition.k_column])
            )
            if weights_and_k.shape[0] == 0:
                raise SQLExecutionError(f"table {queries.name} is empty")
            dataset = Dataset(
                matrix, names=definition.attribute_columns, sense=definition.sense
            )
            query_set = QuerySet(
                weights_and_k[:, :-1],
                weights_and_k[:, -1].astype(int),
                normalized=False,
            )
            definition.engine = ImprovementQueryEngine(dataset, query_set)
            definition.object_version = objects.version
            definition.query_version = queries.version
        return definition.engine

    # ------------------------------------------------------------------
    def _prepare(self, stmt: ast.Improve, matching_row_ids):
        """Shared IMPROVE/EXPLAIN prelude: resolve index, targets, args.

        Returns ``(definition, table, targets, engine, cost, space)``.
        """
        definition = self._indexes.get(stmt.index)
        if definition is None:
            raise SQLCatalogError(f"no improvement index {stmt.index!r}")
        if stmt.table != definition.object_table:
            raise SQLExecutionError(
                f"index {stmt.index!r} indexes table {definition.object_table!r}, "
                f"not {stmt.table!r}"
            )
        table = self.catalog.get(stmt.table)
        targets = matching_row_ids(table, stmt.where)
        if not targets:
            raise SQLExecutionError("TARGET WHERE matched no rows")
        engine = self._engine(definition)
        # KERNEL is per-statement: re-resolve the cached engine's backend
        # every time, so a statement without the clause falls back to the
        # session default instead of inheriting an earlier override.
        try:
            engine.kernel_requested, engine.kernel_backend = resolve_backend(stmt.kernel)
        except ValidationError as exc:
            raise SQLExecutionError(str(exc)) from exc

        cost_cls = _COSTS.get(stmt.cost)
        if cost_cls is None:
            raise SQLExecutionError(
                f"COST must be one of {sorted(_COSTS)}, got {stmt.cost!r}"
            )
        dim = len(definition.attribute_columns)
        cost = cost_cls(dim)
        space = self._space(stmt.adjust, definition, dim)
        return definition, table, targets, engine, cost, space

    def explain(self, stmt: ast.Improve, matching_row_ids, analyze: bool = False):
        """EXPLAIN [ANALYZE] IMPROVE: one plan row per target.

        Plain EXPLAIN builds the plans an executed IMPROVE with the same
        clauses would run and executes nothing; multi-target statements
        plan through ``engine.explain_multi`` so the rows reflect the
        one joint combinatorial loop that would actually run.  With
        ``analyze`` the wrapped IMPROVE runs (results discarded,
        byte-identical to the plain statement) and each row is extended
        with the observed per-stage timings and counters
        (:data:`~repro.core.plan.ANALYZE_FIELDS`).
        """
        from repro.dbms.executor import ResultSet  # local import to avoid a cycle

        _, _, targets, engine, cost, space = self._prepare(stmt, matching_row_ids)
        columns = ["rowid"] + list(PLAN_FIELDS)
        if analyze:
            columns += list(ANALYZE_FIELDS)
        if len(targets) == 1:
            target = targets[0]
            if analyze:
                _, executed = engine.analyze(
                    target,
                    tau=stmt.reach,
                    budget=stmt.budget,
                    cost=cost,
                    space=space,
                    method=stmt.method,
                )
                plans = (executed,)
            else:
                plans = (
                    engine.explain(
                        target,
                        tau=stmt.reach,
                        budget=stmt.budget,
                        cost=cost,
                        space=space,
                        method=stmt.method,
                    ),
                )
        else:
            if stmt.method not in ("efficient",):
                raise SQLExecutionError(
                    "multi-target IMPROVE supports METHOD efficient only"
                )
            if analyze:
                _, plans = engine.analyze_multi(
                    targets,
                    tau=stmt.reach,
                    budget=stmt.budget,
                    costs=cost,
                    spaces=space,
                )
            else:
                plans = engine.explain_multi(
                    targets,
                    tau=stmt.reach,
                    budget=stmt.budget,
                    costs=cost,
                    spaces=space,
                )
        rows = [
            [plan.target] + [value for _, value in plan.rows()] for plan in plans
        ]
        verb = "EXPLAIN ANALYZE" if analyze else "EXPLAIN"
        return ResultSet(columns, rows, status=f"{verb} IMPROVE {len(targets)}")

    def improve(self, stmt: ast.Improve, matching_row_ids):
        """Execute an IMPROVE statement; returns its ResultSet."""
        from repro.dbms.executor import ResultSet  # local import to avoid a cycle

        definition, table, targets, engine, cost, space = self._prepare(
            stmt, matching_row_ids
        )
        columns = (
            ["rowid"]
            + [f"delta_{c}" for c in definition.attribute_columns]
            + ["cost", "hits_before", "hits_after", "satisfied"]
        )
        rows = []
        if len(targets) == 1:
            target = targets[0]
            if stmt.reach is not None:
                result = engine.min_cost(
                    target, stmt.reach, cost=cost, space=space, method=stmt.method
                )
            else:
                result = engine.max_hit(
                    target, stmt.budget, cost=cost, space=space, method=stmt.method
                )
            rows.append(
                [target]
                + [float(v) for v in result.strategy.vector]
                + [result.total_cost, result.hits_before, result.hits_after,
                   int(result.satisfied)]
            )
            strategies = {target: result.strategy}
        else:
            if stmt.method not in ("efficient",):
                raise SQLExecutionError(
                    "multi-target IMPROVE supports METHOD efficient only"
                )
            if stmt.reach is not None:
                result = engine.min_cost_multi(targets, stmt.reach, costs=cost, spaces=space)
            else:
                result = engine.max_hit_multi(targets, stmt.budget, costs=cost, spaces=space)
            for target in targets:
                strategy = result.strategies[target]
                rows.append(
                    [target]
                    + [float(v) for v in strategy.vector]
                    + [strategy.cost, result.hits_before, result.hits_after,
                       int(result.satisfied)]
                )
            strategies = result.strategies

        if stmt.apply:
            for target, strategy in strategies.items():
                for column, delta in zip(definition.attribute_columns, strategy.vector):
                    if abs(float(delta)) > 0:
                        current = table.rows[target][table.column_index(column)]
                        table.update_cell(target, column, float(current) + float(delta))
        return ResultSet(columns, rows, status=f"IMPROVE {len(targets)}")

    @staticmethod
    def _space(adjust_clauses, definition: IndexDefinition, dim: int):
        if not adjust_clauses:
            return None
        lower = np.full(dim, -np.inf)
        upper = np.full(dim, np.inf)
        mentioned = []
        for clause in adjust_clauses:
            try:
                idx = definition.attribute_columns.index(clause.column)
            except ValueError:
                raise SQLExecutionError(
                    f"ADJUST column {clause.column!r} is not an indexed attribute"
                )
            mentioned.append(idx)
            if clause.frozen:
                lower[idx] = upper[idx] = 0.0
            else:
                lower[idx] = clause.lower
                upper[idx] = clause.upper
        # Paper semantics: the user lists which attributes may change;
        # unmentioned attributes stay frozen when any ADJUST is given.
        for idx in range(dim):
            if idx not in mentioned:
                lower[idx] = upper[idx] = 0.0
        return StrategySpace(dim, lower=lower, upper=upper)
