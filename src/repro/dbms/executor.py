"""Statement execution for the mini DBMS.

:class:`Database` is the user-facing object: ``db.execute(sql)`` parses
and runs one statement and returns a :class:`ResultSet` (columns +
rows).  The improvement-query statements (CREATE IMPROVEMENT INDEX /
IMPROVE) are delegated to :mod:`repro.dbms.improve`.

Expression evaluation uses SQL-ish three-valued-light semantics: any
comparison with NULL is false, arithmetic with NULL raises.  A pseudo
column ``rowid`` (insertion order, 0-based) is always available, which
is how IMPROVE targets are usually selected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dbms import ast_nodes as ast
from repro.dbms.catalog import Catalog, Column, Table
from repro.dbms.improve import ImprovementService
from repro.dbms.parser import parse_script
from repro.errors import SQLExecutionError

__all__ = ["Database", "ResultSet"]


@dataclass
class ResultSet:
    """Uniform statement result: header + rows (+ a short status line)."""

    columns: list
    rows: list
    status: str = "OK"

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list:
        """Values of one result column across all rows."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise SQLExecutionError(f"result has no column {name!r}")
        return [row[idx] for row in self.rows]

    def pretty(self) -> str:
        """A fixed-width text rendering (for the examples/CLI)."""
        if not self.columns:
            return self.status
        widths = [len(str(c)) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(_fmt(cell)))
        header = " | ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in self.rows:
            lines.append(" | ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


def _fmt(cell) -> str:
    if cell is None:
        return "NULL"
    if isinstance(cell, float):
        return f"{cell:.6g}"
    return str(cell)


class Database:
    """An in-memory SQL database with improvement-query support."""

    def __init__(self):
        self.catalog = Catalog()
        self.improvements = ImprovementService(self.catalog)

    # ------------------------------------------------------------------
    def execute(self, sql: str) -> ResultSet:
        """Execute one statement; multi-statement scripts use :meth:`run_script`."""
        results = self.run_script(sql)
        if len(results) != 1:
            raise SQLExecutionError(f"expected one statement, got {len(results)}")
        return results[0]

    def run_script(self, sql: str) -> list[ResultSet]:
        """Execute a ';'-separated script; one ResultSet per statement."""
        return [self._dispatch(stmt) for stmt in parse_script(sql)]

    # ------------------------------------------------------------------
    def _dispatch(self, stmt) -> ResultSet:
        if isinstance(stmt, ast.CreateTable):
            self.catalog.create(stmt.name, [Column(n, t) for n, t in stmt.columns])
            return ResultSet([], [], status=f"CREATE TABLE {stmt.name}")
        if isinstance(stmt, ast.DropTable):
            self.catalog.drop(stmt.name)
            self.improvements.forget_table(stmt.name)
            return ResultSet([], [], status=f"DROP TABLE {stmt.name}")
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt)
        if isinstance(stmt, ast.Select):
            return self._select(stmt)
        if isinstance(stmt, ast.Update):
            return self._update(stmt)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt)
        if isinstance(stmt, ast.ShowTables):
            return ResultSet(["table"], [[n] for n in self.catalog.names()])
        if isinstance(stmt, ast.Describe):
            table = self.catalog.get(stmt.name)
            return ResultSet(
                ["column", "type"], [[c.name, c.type_name] for c in table.columns]
            )
        if isinstance(stmt, ast.CreateImprovementIndex):
            self.improvements.create_index(stmt)
            return ResultSet([], [], status=f"CREATE IMPROVEMENT INDEX {stmt.name}")
        if isinstance(stmt, ast.Improve):
            return self.improvements.improve(stmt, self._matching_row_ids)
        if isinstance(stmt, ast.ExplainImprove):
            return self.improvements.explain(
                stmt.statement, self._matching_row_ids, analyze=stmt.analyze
            )
        raise SQLExecutionError(f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    def _insert(self, stmt: ast.Insert) -> ResultSet:
        table = self.catalog.get(stmt.table)
        for row in stmt.rows:
            values = [self._eval(expr, table, None) for expr in row]
            table.insert(values)
        return ResultSet([], [], status=f"INSERT {len(stmt.rows)}")

    def _select(self, stmt: ast.Select) -> ResultSet:
        table = self.catalog.get(stmt.table)
        columns = stmt.columns if stmt.columns is not None else table.column_names
        indices = [self._output_index(table, c) for c in columns]
        row_ids = self._matching_row_ids(table, stmt.where)
        rows = [
            [table.rows[i][j] if j >= 0 else i for j in indices] for i in row_ids
        ]
        if stmt.order_by is not None:
            column, ascending = stmt.order_by
            key_idx = self._output_index(table, column)
            paired = list(zip(rows, row_ids))
            paired.sort(
                key=lambda pair: (
                    pair[0][indices.index(key_idx)]
                    if key_idx in indices
                    else (pair[1] if key_idx < 0 else table.rows[pair[1]][key_idx])
                ),
                reverse=not ascending,
            )
            rows = [row for row, __ in paired]
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        return ResultSet(list(columns), rows)

    def _update(self, stmt: ast.Update) -> ResultSet:
        table = self.catalog.get(stmt.table)
        row_ids = self._matching_row_ids(table, stmt.where)
        for row_id in row_ids:
            for column, expr in stmt.assignments:
                value = self._eval(expr, table, row_id)
                table.update_cell(row_id, column, value)
        return ResultSet([], [], status=f"UPDATE {len(row_ids)}")

    def _delete(self, stmt: ast.Delete) -> ResultSet:
        table = self.catalog.get(stmt.table)
        row_ids = self._matching_row_ids(table, stmt.where)
        removed = table.delete_rows(row_ids)
        return ResultSet([], [], status=f"DELETE {removed}")

    # ------------------------------------------------------------------
    def _matching_row_ids(self, table: Table, where) -> list[int]:
        if where is None:
            return list(range(len(table.rows)))
        out = []
        for row_id in range(len(table.rows)):
            if _truthy(self._eval(where, table, row_id)):
                out.append(row_id)
        return out

    @staticmethod
    def _output_index(table: Table, column: str) -> int:
        """Column index; -1 is the rowid pseudo column."""
        if column.lower() == "rowid":
            return -1
        return table.column_index(column)

    def _eval(self, expr, table: Table, row_id: int | None):
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            if row_id is None:
                raise SQLExecutionError(f"column {expr.name!r} not allowed here")
            if expr.name.lower() == "rowid":
                return row_id
            return table.rows[row_id][table.column_index(expr.name)]
        if isinstance(expr, ast.Unary):
            value = self._eval(expr.operand, table, row_id)
            if expr.op == "-":
                _require_number(value)
                return -value
            return not _truthy(value)
        if isinstance(expr, ast.Binary):
            return self._binary(expr, table, row_id)
        raise SQLExecutionError(f"cannot evaluate {expr!r}")

    def _binary(self, expr: ast.Binary, table, row_id):
        if expr.op == "AND":
            return _truthy(self._eval(expr.left, table, row_id)) and _truthy(
                self._eval(expr.right, table, row_id)
            )
        if expr.op == "OR":
            return _truthy(self._eval(expr.left, table, row_id)) or _truthy(
                self._eval(expr.right, table, row_id)
            )
        left = self._eval(expr.left, table, row_id)
        right = self._eval(expr.right, table, row_id)
        if expr.op in ("=", "<>", "!="):
            equal = left == right
            return equal if expr.op == "=" else not equal
        if expr.op in ("<", ">", "<=", ">="):
            if left is None or right is None:
                return False
            try:
                if expr.op == "<":
                    return left < right
                if expr.op == ">":
                    return left > right
                if expr.op == "<=":
                    return left <= right
                return left >= right
            except TypeError:
                raise SQLExecutionError(f"cannot compare {left!r} and {right!r}")
        _require_number(left)
        _require_number(right)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                raise SQLExecutionError("division by zero")
            return left / right
        raise SQLExecutionError(f"unknown operator {expr.op!r}")


def _truthy(value) -> bool:
    return bool(value) and value is not None


def _require_number(value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SQLExecutionError(f"expected a number, got {value!r}")
