"""Interactive SQL shell for the mini DBMS (``python -m repro.dbms``).

A small REPL mirroring the paper's analytic-tool workflow: load data
with ordinary SQL, build improvement indexes, and issue IMPROVE
statements interactively.  Statements may span lines and end with ';'.

Meta commands: ``.help``, ``.tables``, ``.quit``.
"""

from __future__ import annotations

import sys

from repro.dbms.executor import Database
from repro.errors import ReproError

BANNER = """repro mini-DBMS — improvement queries from SQL
Type .help for help, .quit to exit. Statements end with ';'."""

HELP = """Statements:
  CREATE TABLE t (col INT|FLOAT|TEXT, ...);
  INSERT INTO t VALUES (...), (...);
  SELECT cols|* FROM t [WHERE ...] [ORDER BY col [DESC]] [LIMIT n];
  UPDATE t SET col = expr [WHERE ...];   DELETE FROM t [WHERE ...];
  SHOW TABLES;   DESCRIBE t;   DROP TABLE t;
  CREATE IMPROVEMENT INDEX idx ON objects (a, b)
      USING QUERIES q (wa, wb, k) [SENSE MIN|MAX];
  IMPROVE objects TARGET WHERE ... USING idx
      REACH n | BUDGET x [COST L1|L2|LINF]
      [ADJUST col BETWEEN a AND b | col FROZEN, ...]
      [METHOD efficient|rta|greedy|random] [APPLY];
Meta: .help  .tables  .quit"""


def run_repl(stdin=None, stdout=None) -> int:
    """Run the REPL; returns the process exit code."""
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    db = Database()
    print(BANNER, file=stdout)
    buffer = ""
    while True:
        try:
            prompt = "sql> " if not buffer else "...> "
            print(prompt, end="", file=stdout, flush=True)
            line = stdin.readline()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print(file=stdout)
            buffer = ""
            continue
        if not line:
            print(file=stdout)
            return 0
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            if stripped in (".quit", ".exit"):
                return 0
            if stripped == ".help":
                print(HELP, file=stdout)
            elif stripped == ".tables":
                for name in db.catalog.names():
                    print(name, file=stdout)
            else:
                print(f"unknown meta command {stripped!r}", file=stdout)
            continue
        buffer += line
        if ";" not in buffer:
            continue
        script, buffer = buffer.rsplit(";", 1)
        if not buffer.strip():
            buffer = ""
        try:
            for result in db.run_script(script + ";"):
                if result.columns:
                    print(result.pretty(), file=stdout)
                else:
                    print(result.status, file=stdout)
        except ReproError as exc:
            print(f"error: {exc}", file=stdout)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run_repl())
