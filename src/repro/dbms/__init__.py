"""Mini in-memory DBMS with the IMPROVE statement extension (§6.1)."""

from repro.dbms.executor import Database, ResultSet
from repro.dbms.parser import parse, parse_script

__all__ = ["Database", "ResultSet", "parse", "parse_script"]
