"""AST node types produced by the SQL parser."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Literal",
    "ColumnRef",
    "Unary",
    "Binary",
    "CreateTable",
    "DropTable",
    "Insert",
    "Select",
    "Update",
    "Delete",
    "ShowTables",
    "Describe",
    "CreateImprovementIndex",
    "AdjustClause",
    "Improve",
    "ExplainImprove",
]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    value: object  #: float | int | str | None


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class Unary:
    op: str  #: "-" | "NOT"
    operand: object


@dataclass(frozen=True)
class Binary:
    op: str  #: arithmetic, comparison, AND/OR
    left: object
    right: object


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: list  #: [(name, type_str), ...]


@dataclass(frozen=True)
class DropTable:
    name: str


@dataclass(frozen=True)
class Insert:
    table: str
    rows: list  #: list of value-expression lists


@dataclass(frozen=True)
class Select:
    table: str
    columns: list | None  #: None means '*'
    where: object | None = None
    order_by: tuple | None = None  #: (column, ascending)
    limit: int | None = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: list  #: [(column, expression), ...]
    where: object | None = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: object | None = None


@dataclass(frozen=True)
class ShowTables:
    pass


@dataclass(frozen=True)
class Describe:
    name: str


# ----------------------------------------------------------------------
# Improvement-query extension
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CreateImprovementIndex:
    """CREATE IMPROVEMENT INDEX idx ON objects (a, b) USING QUERIES q (wa, wb, k) [SENSE MAX]"""

    name: str
    object_table: str
    attribute_columns: list
    query_table: str
    weight_columns: list
    k_column: str
    sense: str = "min"


@dataclass(frozen=True)
class AdjustClause:
    """One ADJUST item: bounds for (or freezing of) an attribute."""

    column: str
    frozen: bool = False
    lower: float | None = None
    upper: float | None = None


@dataclass(frozen=True)
class Improve:
    """IMPROVE objects TARGET WHERE ... USING idx REACH n | BUDGET x
    [COST L1|L2|LINF] [ADJUST ...] [METHOD name] [KERNEL backend] [APPLY]"""

    table: str
    where: object
    index: str
    reach: int | None = None  #: Min-Cost IQ goal (tau)
    budget: float | None = None  #: Max-Hit IQ budget (beta)
    cost: str = "L2"
    adjust: list = field(default_factory=list)  #: [AdjustClause, ...]
    method: str = "efficient"
    kernel: str | None = None  #: per-statement kernel backend override
    apply: bool = False


@dataclass(frozen=True)
class ExplainImprove:
    """EXPLAIN [ANALYZE] IMPROVE ... — plan the wrapped IMPROVE.

    Plain EXPLAIN plans without running; EXPLAIN ANALYZE runs the query
    (results discarded, byte-identical to the plain IMPROVE) and extends
    each plan row with the observed per-stage timings and counters.
    """

    statement: Improve
    analyze: bool = False
