"""Multiprocess subdomain-partition construction.

The two expensive stages of building the subdomain index (paper §4.1,
Algorithm 1) are embarrassingly parallel over independent chunks:

* **normals** — each hyperplane normal ``p_a - p_b`` depends on one
  object pair only, so the pair list is chunked across workers;
* **signatures** — each query point's sign vector depends on that point
  and the full normal set only, so the query rows are chunked across
  workers, each computing a *partial* signature matrix with the serial
  :func:`~repro.geometry.arrangement.signature_matrix` helper and
  grouping its rows locally (by raw signature bytes — the structured
  ``np.unique(axis=0)`` the serial path uses costs seconds *per call*
  at exact-mode hyperplane counts, which a per-chunk worker cannot
  amortize).

The object matrix ``D``, the pair list, and the query weights ``Q``
travel to workers through :mod:`multiprocessing.shared_memory` (see
:mod:`repro.parallel.shm`) — the matrices are never pickled.  The
parent merges the per-chunk groups by signature key, offsetting local
row indices by the chunk start; chunks are contiguous and merged in
ascending order, so the global member lists come out ascending exactly
like the serial :func:`~repro.geometry.arrangement.group_by_signature`
output.  The serial path remains the reference: the parity tests assert
the merged partition is bit-for-bit identical.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from multiprocessing import get_context

import numpy as np

from repro.errors import ValidationError
from repro.geometry.arrangement import signature_matrix
from repro.geometry.hyperplane import EPS
from repro.parallel.pool import pool_start_method
from repro.parallel.shm import (
    ArraySpec,
    SharedArrayStore,
    attach_array,
    chunk_bounds,
    detach_all,
)

__all__ = ["parallel_partition", "parallel_shard_partition"]

#: Worker-process registry of the base shared arrays, installed by the
#: pool initializer (module-level so spawn-started workers work too).
_WORKER_ARRAYS: dict[str, np.ndarray] = {}


def _init_worker(specs: dict[str, ArraySpec]) -> None:
    """Pool initializer: map the parent's shared arrays into this worker.

    Attachments a forked worker inherited from the parent's own cache
    describe segments of some earlier pool and are dropped first.
    """
    detach_all()
    for key, spec in specs.items():
        _WORKER_ARRAYS[key] = attach_array(spec)


def _normals_task(task: tuple[int, int, float]) -> tuple[int, np.ndarray, np.ndarray]:
    """Phase A: normals + degenerate-pair mask for one pair chunk.

    Returns ``(start, keep_mask, kept_normals)`` where ``keep_mask``
    marks pairs whose normal is non-degenerate — the same
    ``|n|_inf > EPS`` test the serial constructor applies pair by pair.
    """
    start, stop, tol = task
    matrix = _WORKER_ARRAYS["matrix"]
    pairs = _WORKER_ARRAYS["pairs"]
    chunk = pairs[start:stop]
    normals = matrix[chunk[:, 0]] - matrix[chunk[:, 1]]
    keep = np.abs(normals).max(axis=1, initial=0.0) > tol
    return start, keep, normals[keep]


def _group_rows(signatures: np.ndarray) -> dict[bytes, np.ndarray]:
    """Group identical signature rows by their raw bytes.

    Content-identical to
    :func:`~repro.geometry.arrangement.group_by_signature` (same keys,
    same ascending member arrays) but keyed by a plain bytes hash per
    row instead of a structured ``np.unique(axis=0)``, whose fixed
    per-call cost at exact-mode hyperplane counts (one dtype field per
    column) is what a per-chunk worker cannot amortize.  Key *order*
    differs (first occurrence vs lexicographic); the parent merge is
    keyed by signature bytes and never depends on it.
    """
    rows = np.ascontiguousarray(signatures)
    count = rows.shape[0]
    if count == 0:
        return {}
    if rows.shape[1] == 0:
        return {b"": np.arange(count, dtype=np.intp)}
    stride = rows.shape[1] * rows.itemsize
    data = rows.tobytes()
    buckets: dict[bytes, list[int]] = {}
    for i in range(count):
        buckets.setdefault(data[i * stride : (i + 1) * stride], []).append(i)
    return {
        key: np.asarray(members, dtype=np.intp) for key, members in buckets.items()
    }


def _signature_task(
    task: tuple[int, int, float, ArraySpec]
) -> tuple[int, dict[bytes, np.ndarray]]:
    """Phase B: partial signature partition for one query-row chunk.

    Uses the serial :func:`signature_matrix` helper on the chunk's rows
    against the full shared normal set (so per-element signs match the
    serial path exactly) and groups them with :func:`_group_rows`.
    """
    start, stop, tol, normals_spec = task
    weights = _WORKER_ARRAYS["weights"]
    normals = attach_array(normals_spec)  # cached across tasks per worker
    signatures = signature_matrix(weights[start:stop], normals, tol=tol)
    return start, _group_rows(signatures)


def parallel_partition(
    matrix: np.ndarray,
    pair_array: np.ndarray,
    weights: np.ndarray,
    workers: int,
    tol: float = EPS,
) -> tuple[np.ndarray, np.ndarray, dict[bytes, np.ndarray]]:
    """Build the signature partition across a worker pool.

    Parameters
    ----------
    matrix:
        ``(n, d)`` object attribute matrix ``D``.
    pair_array:
        ``(p, 2)`` candidate object pairs (serial pair order).
    weights:
        ``(m, d)`` query weight matrix ``Q``.
    workers:
        Pool size; must be at least 2 (callers route smaller counts to
        the serial path via :func:`~repro.parallel.pool.resolve_workers`).
    tol:
        Hyperplane side tolerance (the project-wide ``EPS``).

    Returns
    -------
    ``(keep_mask, normals, groups)`` — the boolean mask of
    non-degenerate pairs over ``pair_array`` rows, the ``(h, d)`` kept
    normals in pair order, and the signature-bytes → ascending member
    array mapping, all bit-for-bit identical to the serial construction.
    """
    workers = int(workers)
    if workers < 2:
        raise ValidationError(f"parallel_partition needs workers >= 2, got {workers}")
    matrix = np.ascontiguousarray(np.atleast_2d(np.asarray(matrix, dtype=float)))
    weights = np.ascontiguousarray(np.atleast_2d(np.asarray(weights, dtype=float)))
    pair_array = np.ascontiguousarray(
        np.asarray(pair_array, dtype=np.intp).reshape(-1, 2)
    )
    if matrix.shape[1] != weights.shape[1]:
        raise ValidationError(
            f"dimension mismatch: objects are {matrix.shape[1]}-D, "
            f"queries {weights.shape[1]}-D"
        )
    if pair_array.size and int(pair_array.max(initial=0)) >= matrix.shape[0]:
        raise ValidationError("pair_array references objects beyond the matrix")

    num_pairs = pair_array.shape[0]
    num_queries = weights.shape[0]
    keep_mask = np.zeros(num_pairs, dtype=bool)
    merged: dict[bytes, list[np.ndarray]] = {}
    context = get_context(pool_start_method())
    with SharedArrayStore() as store:
        specs = {
            "matrix": store.share(matrix),
            "pairs": store.share(pair_array),
            "weights": store.share(weights),
        }
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(specs,),
        ) as executor:
            # Phase A: normals per pair chunk (ascending chunk starts).
            normal_tasks = [
                (start, stop, tol) for start, stop in chunk_bounds(num_pairs, workers)
            ]
            chunks: list[tuple[int, np.ndarray]] = []
            for start, keep, kept in executor.map(_normals_task, normal_tasks):
                keep_mask[start : start + keep.shape[0]] = keep
                chunks.append((start, kept))
            chunks.sort(key=lambda item: item[0])
            rows = [kept for __, kept in chunks if kept.shape[0]]
            normals = (
                np.vstack(rows)
                if rows
                else np.empty((0, matrix.shape[1]), dtype=float)
            )

            # Phase B: partial partitions per query chunk, against the
            # full normal set shared through the same store.
            normals_spec = store.share(normals)
            signature_tasks = [
                (start, stop, tol, normals_spec)
                for start, stop in chunk_bounds(num_queries, workers)
            ]
            partials = sorted(
                executor.map(_signature_task, signature_tasks),
                key=lambda item: item[0],
            )
            for start, groups in partials:
                for key, members in groups.items():
                    merged.setdefault(key, []).append(members + start)

    merged_groups = {
        key: np.concatenate(parts).astype(np.intp, copy=False)
        for key, parts in merged.items()
    }
    return keep_mask, normals, merged_groups


def _shard_normals_task(
    task: tuple[ArraySpec, ArraySpec, float]
) -> tuple[np.ndarray, np.ndarray]:
    """Sharded phase A: normals + keep mask for one whole pair set."""
    matrix_spec, pairs_spec, tol = task
    matrix = attach_array(matrix_spec)
    pairs = attach_array(pairs_spec)
    normals = matrix[pairs[:, 0]] - matrix[pairs[:, 1]]
    keep = np.abs(normals).max(axis=1, initial=0.0) > tol
    return keep, np.ascontiguousarray(normals[keep])


def _shard_signature_task(
    task: tuple[int, ArraySpec, ArraySpec, float]
) -> tuple[int, dict[bytes, np.ndarray]]:
    """Sharded phase B: the full signature partition of one shard."""
    shard, weights_spec, normals_spec, tol = task
    weights = attach_array(weights_spec)
    normals = attach_array(normals_spec)
    return shard, _group_rows(signature_matrix(weights, normals, tol=tol))


def parallel_shard_partition(
    matrix: np.ndarray,
    pair_arrays: "list[np.ndarray]",
    weights_list: "list[np.ndarray]",
    workers: int,
    tol: float = EPS,
) -> "list[tuple[np.ndarray, np.ndarray, dict[bytes, np.ndarray]]]":
    """Build K independent shard partitions across one worker pool.

    Unlike :func:`parallel_partition`, which chunks *one* partition's
    rows across workers, the unit of parallelism here is the shard:
    each shard's hyperplane pass (phase A) and signature pass (phase B)
    runs as one task, so K shards build concurrently with zero merge
    work in the parent — each task returns exactly the serial
    construction's per-shard output.

    Shared-memory layout: the object matrix lives in one ``global``
    store every task attaches; each shard gets its *own*
    :class:`~repro.parallel.shm.SharedArrayStore` holding that shard's
    weight rows (and, in relevant mode, its pair set) so per-shard
    segments come and go independently.  In exact mode every shard uses
    the same ``C(n, 2)`` pair set: callers pass the *same* array object
    per shard and phase A runs once, its normals reused by every
    shard's phase B (deduplicated by object identity).

    Parameters mirror :func:`parallel_partition` per shard:
    ``pair_arrays[s]`` and ``weights_list[s]`` describe shard ``s``.
    Returns one ``(keep_mask, normals, groups)`` triple per shard, in
    shard order, each bit-for-bit identical to the serial build of that
    shard.
    """
    workers = int(workers)
    if workers < 2:
        raise ValidationError(
            f"parallel_shard_partition needs workers >= 2, got {workers}"
        )
    if len(pair_arrays) != len(weights_list):
        raise ValidationError(
            f"{len(pair_arrays)} pair sets for {len(weights_list)} shard workloads"
        )
    matrix = np.ascontiguousarray(np.atleast_2d(np.asarray(matrix, dtype=float)))
    shards = len(weights_list)
    context = get_context(pool_start_method())
    out: "list[tuple[np.ndarray, np.ndarray, dict[bytes, np.ndarray]] | None]"
    out = [None] * shards
    with SharedArrayStore() as global_store:
        matrix_spec = global_store.share(matrix)
        shard_stores = [SharedArrayStore() for __ in range(shards)]
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=({},),
            ) as executor:
                # Phase A once per *distinct* pair array (exact mode
                # passes one shared object, so this is a single task).
                normal_futures: "dict[int, Future[tuple[np.ndarray, np.ndarray]]]" = {}
                pair_specs: dict[int, ArraySpec] = {}
                for s, pairs in enumerate(pair_arrays):
                    pairs = np.ascontiguousarray(
                        np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
                    )
                    if pairs.size and int(pairs.max(initial=0)) >= matrix.shape[0]:
                        raise ValidationError(
                            f"shard {s} pair set references objects beyond the matrix"
                        )
                    key = id(pair_arrays[s])
                    if key not in normal_futures:
                        store = global_store if shards > 1 and _is_shared(
                            pair_arrays, s
                        ) else shard_stores[s]
                        pair_specs[key] = store.share(pairs)
                        normal_futures[key] = executor.submit(
                            _shard_normals_task, (matrix_spec, pair_specs[key], tol)
                        )
                normal_results = {
                    key: future.result() for key, future in normal_futures.items()
                }
                normals_specs = {
                    key: global_store.share(normals)
                    for key, (__, normals) in normal_results.items()
                }
                signature_futures: "list[Future[tuple[int, dict[bytes, np.ndarray]]]]" = []
                for s, weights in enumerate(weights_list):
                    weights = np.ascontiguousarray(
                        np.atleast_2d(np.asarray(weights, dtype=float))
                    )
                    if weights.shape[1] != matrix.shape[1] and weights.shape[0]:
                        raise ValidationError(
                            f"shard {s} weights are {weights.shape[1]}-D, "
                            f"objects {matrix.shape[1]}-D"
                        )
                    weights_spec = shard_stores[s].share(weights)
                    key = id(pair_arrays[s])
                    signature_futures.append(
                        executor.submit(
                            _shard_signature_task,
                            (s, weights_spec, normals_specs[key], tol),
                        )
                    )
                for future in signature_futures:
                    s, groups = future.result()
                    key = id(pair_arrays[s])
                    keep_mask, normals = normal_results[key]
                    out[s] = (keep_mask, normals, groups)
        finally:
            for store in shard_stores:
                store.close()
    return [triple for triple in out if triple is not None]


def _is_shared(pair_arrays: "list[np.ndarray]", s: int) -> bool:
    """Is shard ``s``'s pair array the same object as another shard's?"""
    target = id(pair_arrays[s])
    return sum(1 for pairs in pair_arrays if id(pairs) == target) > 1
