"""The parallel execution layer: worker pools over shared arrays.

Every use of :mod:`multiprocessing` / :mod:`concurrent.futures` in the
project lives inside this package (lint rule RPR007 enforces it), so
pool lifecycle, shared-memory hygiene, and platform quirks are handled
in exactly one place.  The integrated pieces:

* :mod:`repro.parallel.construction` — multiprocess subdomain-index
  construction: the hyperplane set and the query points are chunked
  across workers that read the object matrix ``D`` and the query
  weights ``Q`` from :mod:`multiprocessing.shared_memory` (the matrices
  are never pickled); partial signature partitions are merged into
  subdomains in the parent.
* :mod:`repro.parallel.batch` — the fork-per-call batch IQ driver: many
  Min-Cost / Max-Hit calls (many targets, or one target under many
  goals, as in the paper's experiment grids) evaluated across a
  fork-based pool against a read-only shared index.
* :mod:`repro.parallel.persistent` — the persistent worker pool:
  workers forked *once* holding the built index (hot matrices resident
  in shared memory), alive across batches, with epoch-based
  invalidation and crash recovery.  This is the driver for repeated
  batches against one index.
* :mod:`repro.parallel.server` — the batched IQ serving front end over
  a persistent pool: JSONL request streams with coalescing, bounded
  admission, and graceful shutdown (``repro serve``).
* :mod:`repro.parallel.shm` / :mod:`repro.parallel.pool` — the
  substrate: shared-array bookkeeping and pool/context helpers.

Worker-count resolution is uniform everywhere (:func:`resolve_workers`):
an explicit ``workers=`` argument wins, the ``REPRO_WORKERS``
environment variable is the ambient default (``auto`` = all cores), and
values below 2 select the serial reference path.  The serial
implementations remain the default and the executable specification;
the parallel paths must produce bit-for-bit identical results (the
parity tests assert it).
"""

from __future__ import annotations

from repro.parallel.batch import IQRequest, run_batch
from repro.parallel.construction import parallel_partition
from repro.parallel.persistent import PersistentPool
from repro.parallel.pool import pool_start_method, resolve_workers
from repro.parallel.server import IQServer, ServerStats, serve_stream
from repro.parallel.shm import ArraySpec, SharedArrayStore

__all__ = [
    "ArraySpec",
    "IQRequest",
    "IQServer",
    "PersistentPool",
    "ServerStats",
    "SharedArrayStore",
    "parallel_partition",
    "pool_start_method",
    "resolve_workers",
    "run_batch",
    "serve_stream",
]
