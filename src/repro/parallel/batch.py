"""The parallel batch IQ driver.

The paper's experiment grids (fig. 7-9) evaluate *many* improvement
queries against *one* index — many targets, or one target under a sweep
of budgets/thresholds.  Each IQ only reads the index, so a batch
parallelizes trivially once the index is shared.

Sharing works by fork: the parent parks the engine and the request list
in a module global and fork-starts the pool, so workers inherit the
fully-built index through copy-on-write — no pickling of the index, the
matrices, or the requests.  Workers receive *contiguous request chunks*
(one chunk per worker, ``chunksize = ceil(len(batch) / workers)``)
instead of one IPC round-trip per request, so per-task pickle and
dispatch overhead amortizes over the chunk.  On platforms without fork
(or for fewer than two workers/requests) the driver degrades to the
serial loop, which is also the reference the parity tests compare
against.

This fork-per-call path pays pool startup on every ``run_batch`` call;
callers issuing *repeated* batches against one index (the serving
workload) should hold a
:class:`~repro.parallel.persistent.PersistentPool` and either call its
:meth:`~repro.parallel.persistent.PersistentPool.run` directly or pass
it to :func:`run_batch` via ``pool=``, which amortizes worker startup
and keeps per-worker evaluator state warm across batches.

This module must not import :mod:`repro.core` at module level: the
package ``__init__`` imports it, and :mod:`repro.core.subdomain` in
turn imports :mod:`repro.parallel.construction` — engine-side imports
happen lazily at call time instead.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ReproError, ValidationError
from repro.parallel.pool import pool_start_method, resolve_workers
from repro.parallel.shm import chunk_bounds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cost import CostFunction
    from repro.core.engine import ImprovementQueryEngine
    from repro.core.results import IQResult
    from repro.core.strategy import StrategySpace
    from repro.parallel.persistent import PersistentPool

__all__ = ["IQRequest", "run_batch"]


@dataclass(frozen=True)
class IQRequest:
    """One improvement query of a batch.

    ``goal`` is the kind-specific objective: the hit threshold ``tau``
    for ``kind="min_cost"``, the cost budget for ``kind="max_hit"``.
    ``options`` carries extra solver keyword arguments as key/value
    pairs (a tuple so requests stay hashable).
    """

    kind: str  #: "min_cost" | "max_hit"
    target: int  #: object to improve
    goal: float  #: tau (min_cost) or budget (max_hit)
    method: str = "efficient"  #: solver registry name
    cost: "CostFunction | None" = None
    space: "StrategySpace | None" = None
    options: tuple[tuple[str, object], ...] = ()


#: Fork-shared state: ``(engine, requests)`` parked here just before the
#: pool starts so children inherit the read-only index copy-on-write.
_SHARED: "tuple[ImprovementQueryEngine, tuple[IQRequest, ...]] | None" = None


def _run_one(engine: "ImprovementQueryEngine", request: IQRequest) -> "IQResult":
    """Execute one request against the engine (serial and worker path)."""
    kwargs = dict(request.options)
    if request.kind == "min_cost":
        return engine.min_cost(
            request.target,
            int(request.goal),
            cost=request.cost,
            space=request.space,
            method=request.method,
            **kwargs,
        )
    return engine.max_hit(
        request.target,
        float(request.goal),
        cost=request.cost,
        space=request.space,
        method=request.method,
        **kwargs,
    )


def _batch_chunk(bounds: tuple[int, int]) -> "list[IQResult]":
    """Worker task: run one contiguous slice of the fork-shared batch.

    Chunked dispatch is what keeps IPC off the per-request path: one
    pickle round-trip moves ``stop - start`` results, not one.
    """
    if _SHARED is None:  # repro: noqa[RPR008] (fork channel: parked pre-fork, read-only here)
        raise ReproError("batch worker started without fork-shared state")
    engine, requests = _SHARED
    start, stop = bounds
    return [_run_one(engine, requests[index]) for index in range(start, stop)]


def _validate_requests(requests: tuple[IQRequest, ...]) -> None:
    from repro.core.solvers import QUERY_KINDS, get_solver

    for request in requests:
        if request.kind not in QUERY_KINDS:
            raise ValidationError(
                f"request kind must be one of {QUERY_KINDS}, got {request.kind!r}"
            )
        if request.method != "auto":  # "auto" resolves at plan time (feedback rules)
            get_solver(request.method)  # unknown methods fail before the pool starts


def run_batch(
    engine: "ImprovementQueryEngine",
    requests: "Sequence[IQRequest]",
    workers: "int | None" = None,
    pool: "PersistentPool | None" = None,
) -> "list[IQResult]":
    """Evaluate a batch of improvement queries, results in request order.

    ``workers`` resolves through
    :func:`~repro.parallel.pool.resolve_workers` (argument >
    ``REPRO_WORKERS`` > serial).  With fewer than two workers or
    requests, or without the fork start method, the batch runs as the
    serial reference loop; otherwise the engine is shared with a
    fork-based pool copy-on-write and contiguous request chunks are
    evaluated concurrently.  The index must not be mutated while a
    batch runs.

    Passing ``pool=`` dispatches through an existing
    :class:`~repro.parallel.persistent.PersistentPool` instead (its
    workers already hold the index; ``workers`` is ignored).  The pool
    must have been created for the same engine.
    """
    global _SHARED
    batch = tuple(requests)
    if pool is not None:
        if pool.engine is not engine:
            raise ValidationError("pool was created for a different engine")
        return pool.run(batch)
    _validate_requests(batch)
    count = resolve_workers(workers)
    if count < 2 or len(batch) < 2 or pool_start_method() != "fork":
        return [_run_one(engine, request) for request in batch]
    if _SHARED is not None:
        raise ReproError("run_batch is not reentrant: a batch is already running")
    # Build lazily-constructed engine state the workers would otherwise
    # each rebuild: representative prefixes are filled on first use, so
    # touching nothing here is fine — CoW shares whatever exists now.
    _SHARED = (engine, batch)
    try:
        context = get_context("fork")
        count = min(count, len(batch))
        with ProcessPoolExecutor(max_workers=count, mp_context=context) as executor:
            chunks = executor.map(_batch_chunk, chunk_bounds(len(batch), count))
            return [result for chunk in chunks for result in chunk]
    finally:
        _SHARED = None
