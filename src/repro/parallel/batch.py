"""The parallel batch IQ driver.

The paper's experiment grids (fig. 7-9) evaluate *many* improvement
queries against *one* index — many targets, or one target under a sweep
of budgets/thresholds.  Each IQ only reads the index, so a batch
parallelizes trivially once the index is shared.

Sharing works by fork: the parent parks the engine and the request list
in a module global and fork-starts the pool, so workers inherit the
fully-built index through copy-on-write — no pickling of the index, the
matrices, or the requests.  Only the request *index* travels to a
worker and only the :class:`~repro.core.results.IQResult` travels back.
On platforms without fork (or for fewer than two workers/requests) the
driver degrades to the serial loop, which is also the reference the
parity tests compare against.

This module must not import :mod:`repro.core` at module level: the
package ``__init__`` imports it, and :mod:`repro.core.subdomain` in
turn imports :mod:`repro.parallel.construction` — engine-side imports
happen lazily at call time instead.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import ReproError, ValidationError
from repro.parallel.pool import pool_start_method, resolve_workers

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cost import CostFunction
    from repro.core.engine import ImprovementQueryEngine
    from repro.core.results import IQResult
    from repro.core.strategy import StrategySpace

__all__ = ["IQRequest", "run_batch"]


@dataclass(frozen=True)
class IQRequest:
    """One improvement query of a batch.

    ``goal`` is the kind-specific objective: the hit threshold ``tau``
    for ``kind="min_cost"``, the cost budget for ``kind="max_hit"``.
    ``options`` carries extra solver keyword arguments as key/value
    pairs (a tuple so requests stay hashable).
    """

    kind: str  #: "min_cost" | "max_hit"
    target: int  #: object to improve
    goal: float  #: tau (min_cost) or budget (max_hit)
    method: str = "efficient"  #: solver registry name
    cost: "CostFunction | None" = None
    space: "StrategySpace | None" = None
    options: tuple[tuple[str, object], ...] = ()


#: Fork-shared state: ``(engine, requests)`` parked here just before the
#: pool starts so children inherit the read-only index copy-on-write.
_SHARED: "tuple[ImprovementQueryEngine, tuple[IQRequest, ...]] | None" = None


def _run_one(engine: "ImprovementQueryEngine", request: IQRequest) -> "IQResult":
    """Execute one request against the engine (serial and worker path)."""
    kwargs = dict(request.options)
    if request.kind == "min_cost":
        return engine.min_cost(
            request.target,
            int(request.goal),
            cost=request.cost,
            space=request.space,
            method=request.method,
            **kwargs,
        )
    return engine.max_hit(
        request.target,
        float(request.goal),
        cost=request.cost,
        space=request.space,
        method=request.method,
        **kwargs,
    )


def _batch_worker(index: int) -> "IQResult":
    """Worker task: run the index-th request of the fork-shared batch."""
    if _SHARED is None:
        raise ReproError("batch worker started without fork-shared state")
    engine, requests = _SHARED
    return _run_one(engine, requests[index])


def _validate_requests(requests: tuple[IQRequest, ...]) -> None:
    from repro.core.solvers import QUERY_KINDS, get_solver

    for request in requests:
        if request.kind not in QUERY_KINDS:
            raise ValidationError(
                f"request kind must be one of {QUERY_KINDS}, got {request.kind!r}"
            )
        get_solver(request.method)  # unknown methods fail before the pool starts


def run_batch(
    engine: "ImprovementQueryEngine",
    requests: "Sequence[IQRequest]",
    workers: int | None = None,
) -> "list[IQResult]":
    """Evaluate a batch of improvement queries, results in request order.

    ``workers`` resolves through
    :func:`~repro.parallel.pool.resolve_workers` (argument >
    ``REPRO_WORKERS`` > serial).  With fewer than two workers or
    requests, or without the fork start method, the batch runs as the
    serial reference loop; otherwise the engine is shared with a
    fork-based pool copy-on-write and requests are evaluated
    concurrently.  The index must not be mutated while a batch runs.
    """
    global _SHARED
    batch = tuple(requests)
    _validate_requests(batch)
    count = resolve_workers(workers)
    if count < 2 or len(batch) < 2 or pool_start_method() != "fork":
        return [_run_one(engine, request) for request in batch]
    if _SHARED is not None:
        raise ReproError("run_batch is not reentrant: a batch is already running")
    # Build lazily-constructed engine state the workers would otherwise
    # each rebuild: representative prefixes are filled on first use, so
    # touching nothing here is fine — CoW shares whatever exists now.
    _SHARED = (engine, batch)
    try:
        context = get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(count, len(batch)), mp_context=context
        ) as executor:
            return list(executor.map(_batch_worker, range(len(batch))))
    finally:
        _SHARED = None
