"""Shared-memory array plumbing for the worker pool.

The parent exports read-only numpy arrays into named
:class:`multiprocessing.shared_memory.SharedMemory` segments and hands
workers only the tiny :class:`ArraySpec` descriptors; workers re-map the
same physical pages instead of unpickling array copies.  This is what
lets index construction ship the object matrix ``D`` and the query
weights ``Q`` to every worker for the cost of an ``mmap``.

Lifecycle rules (the part that is easy to get wrong):

* the parent owns every segment it created — :class:`SharedArrayStore`
  is a context manager that closes *and unlinks* them on exit;
* workers only ever *attach*.  Attached segments are deregistered from
  the per-process ``resource_tracker`` (or opened with ``track=False``
  on Python 3.13+) so a worker exiting cannot tear down segments the
  parent still uses — the long-standing CPython pitfall bpo-38119.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Iterator

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "ArraySpec",
    "SharedArrayStore",
    "attach_array",
    "attached_segments",
    "detach_all",
    "detach_array",
]

#: Worker-side registry of attached segments.  Segments must outlive the
#: arrays mapped onto their buffers, so attachments are cached per
#: segment name, keyed together with the :class:`ArraySpec` they were
#: attached under — a cache hit is only valid for the *same* spec, and a
#: name reused with a different layout evicts the stale entry instead of
#: serving a wrong-shape view of whatever lives there now.
_ATTACHED: dict[str, tuple[ArraySpec, shared_memory.SharedMemory, np.ndarray]] = {}

#: Segments evicted from the cache while their ndarray view (or a slice
#: of it) was still referenced elsewhere.  numpy views do *not* export
#: the underlying memoryview buffer, so ``SharedMemory.close()`` on such
#: a segment would not raise — it would silently unmap pages the live
#: view still reads (a segfault on next access).  Parking the handle
#: keeps the mapping alive for the life of the process instead; the
#: cost is bounded by eviction count, and eviction is rare.
_ZOMBIES: list[shared_memory.SharedMemory] = []


@dataclass(frozen=True)
class ArraySpec:
    """Pickle-friendly descriptor of one shared array (not its data)."""

    name: str  #: shared-memory segment name
    shape: tuple[int, ...]
    dtype: str  #: numpy dtype string, e.g. ``"<f8"``


class SharedArrayStore:
    """Parent-side owner of shared-memory segments (context manager).

    ``share(array)`` copies the array into a fresh segment and returns
    the :class:`ArraySpec` workers use to attach; ``close()`` (or
    leaving the ``with`` block) closes and unlinks every segment the
    store created.
    """

    def __init__(self) -> None:
        self._segments: list[shared_memory.SharedMemory] = []

    def share(self, array: np.ndarray) -> ArraySpec:
        """Export one array into a new shared segment."""
        spec, __ = self.share_view(array)
        return spec

    def share_view(self, array: np.ndarray) -> "tuple[ArraySpec, np.ndarray]":
        """Export one array and return a parent-side view of the segment.

        The returned read-only ndarray maps the shared pages directly,
        so a parent that *rebinds* its own hot matrices onto the view
        (the persistent pool does) reads the exact physical memory its
        fork-started workers inherit — the array is resident in shared
        memory, not merely copy-on-write duplicated per fork generation.
        The view must not outlive the store; callers that rebound live
        state onto it copy the data back out before :meth:`close`.
        """
        array = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        self._segments.append(segment)
        view: np.ndarray = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        if array.nbytes:
            view[...] = array
        view.setflags(write=False)
        return ArraySpec(segment.name, tuple(array.shape), array.dtype.str), view

    def close(self) -> None:
        """Close and unlink every segment this store created.

        Same-process attachments to this store's segments (the serial
        path and tests attach in the parent) are evicted first, so the
        worker-side cache can never serve a view of an unlinked segment.
        """
        for segment in self._segments:
            detach_array(segment.name)
            try:
                segment.close()
            except BufferError:  # pragma: no cover - non-numpy buffer export
                _ZOMBIES.append(segment)
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership."""
    try:
        # Python 3.13+: never register with the resource tracker.
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        # Older Pythons register attachments with the resource tracker
        # exactly like creations (bpo-38119), which double-books the
        # segment: fork-pool workers share the parent's tracker, so the
        # spurious registration (or un-registering it) desyncs the
        # tracker from the parent's own create/unlink bookkeeping.
        # Suppress registration for the attach only.
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]


def attach_array(spec: ArraySpec) -> np.ndarray:
    """Map a shared segment as a read-only ndarray (worker side, cached).

    A cache hit is honoured only when the cached entry was attached
    under the *same* spec; a segment name reused with a different
    shape/dtype (generations of pools recycle names eventually) evicts
    the stale entry and re-attaches instead of serving a wrong-layout
    view of the new segment's bytes.
    """
    cached = _ATTACHED.get(spec.name)
    if cached is not None:
        if cached[0] == spec:
            return cached[2]
        detach_array(spec.name)
    if any(side < 0 for side in spec.shape):
        raise ValidationError(f"invalid shared-array shape {spec.shape}")
    segment = _attach_segment(spec.name)
    array: np.ndarray = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    array.setflags(write=False)
    _ATTACHED[spec.name] = (spec, segment, array)
    return array


def detach_array(name: str) -> bool:
    """Evict one cached attachment; returns False if it was not cached.

    The segment is closed only when the cache held the *last* reference
    to its ndarray.  Any external reference — a caller's binding, a
    slice, an engine attribute rebound onto the view — keeps the chain
    of ``.base`` references to the cached array alive, so a refcount
    above the cache's own bookkeeping means closing would unmap memory
    someone still reads; the segment is parked in ``_ZOMBIES`` instead.
    """
    entry = _ATTACHED.pop(name, None)
    if entry is None:
        return False
    __, segment, array = entry
    # Live references at this point when nobody else holds the array:
    # the entry tuple, the local ``array``, and getrefcount's argument.
    if sys.getrefcount(array) <= 3:
        del array, entry
        try:
            segment.close()
        except BufferError:  # pragma: no cover - defensive
            _ZOMBIES.append(segment)
    else:
        _ZOMBIES.append(segment)
    return True


def detach_all() -> int:
    """Evict every cached attachment; returns how many were evicted.

    Worker initializers call this first: a fork-started worker inherits
    the parent's cache, whose entries describe the *previous* pool
    generation's segments — stale state the re-fork exists to replace.
    """
    count = 0
    for name in list(_ATTACHED):
        if detach_array(name):
            count += 1
    return count


def attached_segments() -> frozenset[str]:
    """Names of the segments currently held by the attachment cache."""
    return frozenset(_ATTACHED)


def chunk_bounds(total: int, chunks: int) -> Iterator[tuple[int, int]]:
    """Split ``range(total)`` into at most ``chunks`` contiguous slices."""
    if total <= 0:
        return
    if chunks < 1:
        raise ValidationError(f"chunks must be positive, got {chunks}")
    step = -(-total // chunks)  # ceil division: balanced, order-preserving
    for start in range(0, total, step):
        yield start, min(total, start + step)
