"""The batched IQ serving front end (``repro serve``).

This is what the persistent pool was built for: a long-lived process
that holds one built index and answers a *stream* of improvement
queries.  The protocol is JSONL — one JSON object per line in, one per
line out — so any client that can write lines to a pipe (or a socket
wired to stdio) can drive it:

Request lines::

    {"id": 7, "kind": "min_cost", "target": 3, "goal": 25}
    {"id": 8, "kind": "max_hit", "target": 3, "goal": 1.5,
     "method": "greedy", "options": {"seed": 0}}

Control lines::

    {"op": "stats"}      -> one stats snapshot line
    {"op": "shutdown"}   -> drain queued requests, then exit

Response lines (one per request, batch order)::

    {"id": 7, "ok": true, "result": {"target": 3, "hits_before": 1, ...}}
    {"id": 8, "ok": false, "error": "ValidationError: ..."}

Mechanics, in the order the ISSUE asked for them:

* **batching/coalescing** — a reader thread parses and enqueues
  requests while the main loop drains up to ``batch_size`` of them per
  dispatch, so bursty clients are served in chunked pool batches, not
  one IPC round-trip per request;
* **bounded admission** — the queue holds at most ``max_queue``
  requests; arrivals beyond that are *rejected immediately* with an
  error response rather than buffered without bound;
* **graceful shutdown** — EOF or ``{"op": "shutdown"}`` stops
  admission, drains the queue, and returns final
  :class:`ServerStats`; worker crashes are absorbed by the pool's
  refresh-and-retry and surface in ``stats.restarts``;
* **epoch checks** — dispatch goes through
  :meth:`~repro.parallel.persistent.PersistentPool.run_outcomes`,
  which re-forks on index mutation, so the server can never answer
  from a stale index; refreshes surface in ``stats.refreshes``.

Costs and strategy spaces are not expressible in the wire format yet;
requests use the engine's defaults (L2 cost, unconstrained space).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Protocol

from repro.errors import ReproError, ValidationError
from repro.observe import now
from repro.parallel.batch import IQRequest, _validate_requests
from repro.parallel.persistent import PersistentPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import ImprovementQueryEngine
    from repro.core.results import IQResult

__all__ = ["DEFAULT_BATCH_SIZE", "DEFAULT_MAX_QUEUE", "IQServer", "ServerStats", "serve_stream"]

#: Requests coalesced into one pool dispatch (upper bound per batch).
DEFAULT_BATCH_SIZE = 32

#: Admission bound: parsed requests waiting for dispatch beyond this
#: are rejected with an error response instead of queued.
DEFAULT_MAX_QUEUE = 256


class _Writer(Protocol):
    """Anything response lines can be written to (stdout, StringIO, socket file)."""

    def write(self, text: str) -> int: ...

    def flush(self) -> None: ...


@dataclass
class ServerStats:
    """One serve session's counters (returned by :meth:`IQServer.serve`)."""

    served: int = 0  #: successful responses emitted
    failed: int = 0  #: error responses (parse, validation, or execution)
    rejected: int = 0  #: admission rejections (queue full)
    batches: int = 0  #: pool dispatches
    refreshes: int = 0  #: pool re-forks observed (epoch invalidations)
    restarts: int = 0  #: pool re-forks forced by worker crashes
    seconds: float = 0.0  #: wall-clock time of the serve session (so far)
    dispatch_seconds: float = 0.0  #: wall-clock spent inside pool dispatches
    workers: int = 0  #: resolved pool size (0/1 = serial reference)
    kernel: str = "python"  #: resolved kernel backend the engine serves with
    mmap_resident: int = 0  #: hot arrays served zero-copy from the page cache

    @property
    def throughput(self) -> float:
        """Successful responses per second of serve wall-clock."""
        if self.seconds <= 0.0:
            return 0.0
        return self.served / self.seconds

    @property
    def avg_request_seconds(self) -> float:
        """Mean pool-dispatch wall-clock per successful response."""
        if self.served <= 0:
            return 0.0
        return self.dispatch_seconds / self.served

    def as_dict(self) -> "dict[str, object]":
        """JSON-ready snapshot (what the ``stats`` control op reports)."""
        payload: "dict[str, object]" = dict(asdict(self))
        payload["throughput"] = self.throughput
        payload["avg_request_seconds"] = self.avg_request_seconds
        return payload


@dataclass(frozen=True)
class _Pending:
    """One admitted request waiting for dispatch."""

    request_id: object
    request: IQRequest


def _parse_request(payload: "dict[str, object]") -> IQRequest:
    """Build and validate the IQRequest one protocol line describes."""
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise ValidationError("request needs a string 'kind' (min_cost | max_hit)")
    target = payload.get("target")
    if isinstance(target, bool) or not isinstance(target, int):
        raise ValidationError("request needs an integer 'target'")
    goal = payload.get("goal")
    if isinstance(goal, bool) or not isinstance(goal, (int, float)):
        raise ValidationError("request needs a numeric 'goal' (tau or budget)")
    method = payload.get("method", "efficient")
    if not isinstance(method, str):
        raise ValidationError("request 'method' must be a solver name string")
    raw_options = payload.get("options", None)
    options: "tuple[tuple[str, object], ...]" = ()
    if raw_options is not None:
        if not isinstance(raw_options, dict):
            raise ValidationError("request 'options' must be a JSON object")
        options = tuple(sorted(raw_options.items()))
    request = IQRequest(
        kind=kind, target=target, goal=float(goal), method=method, options=options
    )
    # Per-request validation at admission time: a bad kind or unknown
    # method must produce one error *response*, not poison a batch.
    _validate_requests((request,))
    return request


def _result_payload(result: "IQResult") -> "dict[str, object]":
    return {
        "target": result.target,
        "strategy": [float(delta) for delta in result.strategy.vector],
        "hits_before": result.hits_before,
        "hits_after": result.hits_after,
        "total_cost": float(result.total_cost),
        "satisfied": result.satisfied,
        "evaluations": result.evaluations,
    }


class IQServer:
    """A JSONL improvement-query server over one persistent pool.

    The server borrows the pool — it never closes it — so one pool can
    outlive many serve sessions (and the CLI owns its pool's lifetime
    with an ordinary ``with`` block).  :meth:`serve` blocks until the
    request stream ends and is not reentrant.
    """

    #: Seconds :meth:`serve` waits for the reader thread after the
    #: dispatch loop ends; a reader wedged in blocking input past this
    #: is abandoned (daemon) rather than wedging the pool shutdown.
    READER_JOIN_GRACE = 5.0

    def __init__(
        self,
        pool: PersistentPool,
        batch_size: int = DEFAULT_BATCH_SIZE,
        max_queue: int = DEFAULT_MAX_QUEUE,
    ) -> None:
        if batch_size < 1:
            raise ValidationError(f"batch_size must be positive, got {batch_size}")
        if max_queue < 1:
            raise ValidationError(f"max_queue must be positive, got {max_queue}")
        self._pool = pool
        self._batch_size = batch_size
        self._max_queue = max_queue
        self._queue: "deque[_Pending]" = deque()
        self._cond = threading.Condition()
        self._write_lock = threading.Lock()
        self._writer: "_Writer | None" = None
        self._done = False
        self._serving = False
        self._stats = ServerStats()
        self._started: "float | None" = None
        self._reader_error: "Exception | None" = None

    @property
    def pool(self) -> PersistentPool:
        return self._pool

    # ------------------------------------------------------------------
    # Response emission (reader thread and main loop both emit)
    # ------------------------------------------------------------------
    def _emit(self, payload: "dict[str, object]") -> None:
        writer = self._writer
        if writer is None:  # pragma: no cover - serve() always binds first
            raise ReproError("IQServer has no response writer bound")
        with self._write_lock:
            # The write lock exists to serialize exactly this I/O: the
            # reader thread and the dispatch loop interleave responses.
            writer.write(json.dumps(payload) + "\n")  # repro: noqa[RPR011]
            writer.flush()  # repro: noqa[RPR011]

    def _emit_error(self, request_id: object, error: Exception) -> None:
        self._emit(
            {"id": request_id, "ok": False, "error": f"{type(error).__name__}: {error}"}
        )

    # ------------------------------------------------------------------
    # Reader thread: parse, admit or reject, answer control ops
    # ------------------------------------------------------------------
    def _read_loop(self, reader: "Iterable[str]") -> None:
        """Reader-thread body: parse lines until EOF, shutdown, or failure.

        A reader that *dies* (broken pipe, a writer whose far end
        vanished mid-response, a poisoned iterable) must not take the
        responses it already owed silently with it: the exception is
        captured for :meth:`serve` to surface after the queue drains,
        and ``_done`` is always signalled so the dispatch loop can
        finish instead of waiting forever.
        """
        try:
            for line in reader:
                if self._done:
                    break  # dispatch loop failed: stop consuming input
                text = line.strip()
                if not text:
                    continue
                if self._handle_line(text):
                    break
        except Exception as exc:  # noqa: BLE001 - surfaced by serve() after drain
            self._reader_error = exc
        finally:
            with self._cond:
                self._done = True
                self._cond.notify_all()

    def _handle_line(self, text: str) -> bool:
        """Process one protocol line; True means stop reading (shutdown)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            self._stats.failed += 1
            self._emit_error(None, ValidationError(f"invalid JSON request: {exc}"))
            return False
        if not isinstance(payload, dict):
            self._stats.failed += 1
            self._emit_error(None, ValidationError("request must be a JSON object"))
            return False
        op = payload.get("op")
        if op == "shutdown":
            self._emit({"ok": True, "op": "shutdown", "draining": len(self._queue)})
            return True
        if op == "stats":
            snapshot = self._snapshot_stats().as_dict()
            snapshot["queued"] = len(self._queue)
            self._emit({"ok": True, "op": "stats", "stats": snapshot})
            return False
        if op is not None:
            self._stats.failed += 1
            self._emit_error(payload.get("id"), ValidationError(f"unknown op {op!r}"))
            return False
        request_id = payload.get("id")
        try:
            request = _parse_request(payload)
        except ReproError as exc:
            self._stats.failed += 1
            self._emit_error(request_id, exc)
            return False
        # Decide admission under the lock; emit the rejection after
        # releasing it.  The rejection response is pipe I/O, and writing
        # it while holding the admission lock would stall the dispatch
        # loop (and every other producer) on one slow client (RPR011).
        rejected = False
        with self._cond:
            if len(self._queue) >= self._max_queue:
                self._stats.rejected += 1
                rejected = True
            else:
                self._queue.append(_Pending(request_id, request))
                self._cond.notify_all()
        if rejected:
            self._emit_error(
                request_id,
                ReproError(
                    f"server queue full ({self._max_queue} requests pending); "
                    "retry after responses drain"
                ),
            )
        return False

    # ------------------------------------------------------------------
    # Main loop: coalesce and dispatch
    # ------------------------------------------------------------------
    def _next_batch(self) -> "list[_Pending]":
        with self._cond:
            while not self._queue and not self._done:
                self._cond.wait()
            batch: "list[_Pending]" = []
            while self._queue and len(batch) < self._batch_size:
                batch.append(self._queue.popleft())
            return batch

    def _snapshot_stats(self) -> ServerStats:
        """A stats copy with ``seconds`` computed *now*, not at stream end.

        The reader thread answers mid-stream ``stats`` ops from this
        snapshot; mutating ``self._stats.seconds`` here instead would
        race the dispatch loop's counters, and the stale field was
        exactly the bug — zero elapsed time (and a zeroed throughput)
        until the stream ended.
        """
        stats = replace(self._stats)
        if self._serving and self._started is not None:
            stats.seconds = now() - self._started
        return stats

    def _serve_batch(self, batch: "list[_Pending]") -> None:
        self._stats.batches += 1
        generation = self._pool.generation
        restarts = self._pool.restarts
        dispatched = now()
        try:
            outcomes = self._pool.run_outcomes([item.request for item in batch])
        except ReproError as exc:
            # The whole dispatch failed (e.g. workers died twice): every
            # request of the batch gets an error response, the stream
            # keeps serving.
            self._stats.failed += len(batch)
            for item in batch:
                self._emit_error(item.request_id, exc)
            return
        finally:
            self._stats.dispatch_seconds += now() - dispatched
            self._stats.restarts += self._pool.restarts - restarts
            self._stats.refreshes += self._pool.generation - generation
        for item, (ok, value) in zip(batch, outcomes):
            if ok:
                self._stats.served += 1
                self._emit(
                    {
                        "id": item.request_id,
                        "ok": True,
                        "result": _result_payload(value),  # type: ignore[arg-type]
                    }
                )
            else:
                self._stats.failed += 1
                if isinstance(value, Exception):
                    self._emit_error(item.request_id, value)
                else:  # pragma: no cover - outcomes carry exceptions on failure
                    self._emit_error(item.request_id, ReproError(repr(value)))

    def serve(self, reader: "Iterable[str]", writer: _Writer) -> ServerStats:
        """Serve a JSONL request stream until EOF or shutdown; blocking.

        Returns the session's :class:`ServerStats` (also the value a
        trailing ``{"op": "stats"}`` request would have reported, plus
        final wall-clock and throughput).
        """
        if self._serving:
            raise ReproError("IQServer.serve is not reentrant: a stream is being served")
        self._serving = True
        self._stats = ServerStats(
            workers=self._pool.workers,
            kernel=self._pool.engine.kernel_backend,
            mmap_resident=self._pool.mmap_resident,
        )
        self._writer = writer
        self._done = False
        self._reader_error = None
        self._queue.clear()
        self._started = started = now()
        thread = threading.Thread(target=self._read_loop, args=(reader,), daemon=True)
        thread.start()
        try:
            while True:
                batch = self._next_batch()
                if not batch:
                    break  # queue empty and reader done: drained
                self._serve_batch(batch)
        finally:
            # Signal the reader first: if the dispatch loop is exiting
            # on an exception, the reader must stop admitting work.  A
            # reader blocked inside ``next(reader)`` (a pipe with no
            # more input ever coming) cannot be interrupted, so the
            # join is bounded — the daemon thread dies with the
            # process instead of wedging the caller's finally blocks
            # (and the pool shutdown behind them) forever.
            with self._cond:
                self._done = True
                self._cond.notify_all()
            thread.join(timeout=self.READER_JOIN_GRACE)
            self._stats.seconds = now() - started
            self._serving = False
        if self._reader_error is not None:
            raise ReproError(
                f"server request reader failed mid-stream: "
                f"{type(self._reader_error).__name__}: {self._reader_error}"
            ) from self._reader_error
        return self._stats


def serve_stream(
    engine: "ImprovementQueryEngine",
    reader: "Iterable[str]",
    writer: _Writer,
    workers: "int | str | None" = None,
    pool: "PersistentPool | None" = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_queue: int = DEFAULT_MAX_QUEUE,
) -> ServerStats:
    """Serve one JSONL stream for ``engine``; the CLI/bench entry point.

    With ``pool=`` the caller's pool is borrowed (and left open);
    otherwise a :class:`PersistentPool` is created for the session and
    closed when the stream ends.
    """
    if pool is not None:
        if pool.engine is not engine:
            raise ValidationError("pool was created for a different engine")
        return IQServer(pool, batch_size=batch_size, max_queue=max_queue).serve(
            reader, writer
        )
    with PersistentPool(engine, workers=workers) as owned:
        return IQServer(owned, batch_size=batch_size, max_queue=max_queue).serve(
            reader, writer
        )
