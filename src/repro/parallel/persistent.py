"""The persistent worker pool: fork once, serve batches forever.

The fork-per-call driver in :mod:`repro.parallel.batch` pays pool
startup, per-request IPC, and cold per-worker state on *every*
``run_batch`` call — which is why BENCH_PR4 recorded the pooled batch
path *slower* than serial.  :class:`PersistentPool` amortizes all three
across the lifetime of an index:

* **fork once** — workers are forked holding the fully-built engine
  (index, warm representative prefixes, evaluator caches) and stay
  alive across :meth:`run` calls;
* **zero-copy residency for mmap-loaded indexes** — a hot array whose
  buffer is a file-backed ``np.memmap`` (an index opened from the
  ``mmap`` persistence layout) is *skipped* by the export: forked
  workers inherit the read-only mapping and share its physical pages
  through the OS page cache already, so a shared-memory copy would only
  add memory;
* **shm-resident hot matrices** — the index enumerates its own
  shared-memory plan (:meth:`SubdomainIndex.hot_arrays`): the object
  matrix ``D``, the query weights ``Q``, and the hyperplane normals —
  per shard, for a sharded index — are exported into
  :class:`~repro.parallel.shm.SharedArrayStore` segments, one store per
  *group*; each worker's initializer rebinds its inherited engine onto
  the shared pages, so every worker (and every post-crash fork
  generation) reads the same physical memory instead of per-process
  copies;
* **chunked dispatch** — a batch travels as contiguous request slices
  (one per worker), so IPC cost is per-chunk, not per-request, and
  per-worker threshold caches warm across the whole slice.

Consistency is epoch-based, like every other index consumer: the pool
records :attr:`~repro.core.subdomain.SubdomainIndex.epoch` at fork time
and compares lazily on every :meth:`run` — a mutated index can never be
served from stale workers; the pool re-forks (a *refresh*) before
dispatching.  Over a sharded index the refresh is *scoped*: the pool
also snapshots the per-shard epochs, and re-exports only the ``global``
group plus the shard groups whose epoch moved — workers still re-fork,
but the segment copy cost is bounded by what actually mutated.  A
worker crash (:class:`BrokenProcessPool`) likewise triggers one full
refresh-and-retry before surfacing an error.

The serial loop stays the executable reference: a pool resolved to
fewer than two workers (or a platform without fork) executes requests
in-process through the very same per-request code path the parity
tests compare against.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.errors import ReproError, ValidationError
from repro.parallel.batch import IQRequest, _run_one, _validate_requests
from repro.parallel.pool import pool_start_method, resolve_workers
from repro.parallel.shm import (
    ArraySpec,
    SharedArrayStore,
    attach_array,
    chunk_bounds,
    detach_all,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.engine import ImprovementQueryEngine
    from repro.core.results import IQResult

__all__ = ["Outcome", "PersistentPool"]

#: One request's fate: ``(True, IQResult)`` or ``(False, exception)``.
Outcome = "tuple[bool, IQResult | Exception]"

#: Fork-shared registry: token -> engine, set for the whole pool
#: lifetime so lazily-forked workers inherit it whenever they start.
_POOL_ENGINES: "dict[str, ImprovementQueryEngine]" = {}


def _mmap_backed(array: np.ndarray) -> bool:
    """True when the array's memory lives in a file-backed ``np.memmap``.

    Arrays loaded through the mmap index layout are read-only views
    whose buffer is the OS page cache; forked workers inherit the
    mapping and share those physical pages for free, so exporting them
    into a shared-memory segment would only *add* a copy.  ``np.asarray``
    strips the ``memmap`` subclass, so the check walks the ``.base``
    chain to the owning buffer instead of type-checking the array
    itself.
    """
    base: "object | None" = array
    while isinstance(base, np.ndarray):
        if isinstance(base, np.memmap):
            return True
        base = base.base
    return False

def _init_pool_worker(token: str, specs: "dict[str, ArraySpec]") -> None:
    """Worker initializer: rebind the inherited engine onto shared pages.

    The engine object graph arrives by fork (copy-on-write); the hot
    matrices — enumerated by the index's *own*
    :meth:`~repro.core.subdomain.SubdomainIndex.hot_arrays` plan, so a
    sharded index rebinds every shard's weight subset and normals too —
    are swapped for attachments to the parent's shared segments, so the
    bulk of the index is resident in shared memory rather than
    duplicated per worker or per fork generation.

    The inherited attachment cache is dropped first: its entries
    describe the *previous* fork generation's segments, which the
    parent unlinked before re-forking.
    """
    detach_all()
    engine = _POOL_ENGINES.get(token)  # repro: noqa[RPR008] (fork channel: set pre-fork, read-only here)
    if engine is None:  # pragma: no cover - requires spawn-started worker
        return
    for key, _group, owner, attr in engine.index.hot_arrays():
        spec = specs.get(key)
        if spec is None:
            continue
        # Swapping the inherited copy for the shared mapping changes no
        # observable value, so the epoch bus stays silent by design.
        setattr(owner, attr, attach_array(spec))  # repro: noqa[RPR010]


def _sanitize_error(exc: Exception) -> Exception:
    """An exception safe to pickle back over the pool's result pipe."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure degrades to repr
        return ReproError(f"{type(exc).__name__}: {exc}")


def _chunk_task(
    token: str, start: int, requests: "tuple[IQRequest, ...]"
) -> "list[tuple[bool, object]]":
    """Worker task: evaluate one contiguous request slice, capturing errors.

    Per-request exceptions are *returned*, not raised, so one bad
    request cannot poison the chunk's siblings or the worker process —
    the pool survives and the caller decides whether to re-raise.
    """
    engine = _POOL_ENGINES.get(token)  # repro: noqa[RPR008] (fork channel: set pre-fork, read-only here)
    if engine is None:
        raise ReproError(
            f"persistent-pool worker has no engine for token {token!r} "
            "(was the pool closed while a batch ran?)"
        )
    outcomes: "list[tuple[bool, object]]" = []
    for request in requests:
        try:
            outcomes.append((True, _run_one(engine, request)))
        except Exception as exc:  # noqa: BLE001 - worker must survive any request
            outcomes.append((False, _sanitize_error(exc)))
    return outcomes


class PersistentPool:
    """A long-lived worker pool bound to one engine's index.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.ImprovementQueryEngine` whose
        index the workers hold.  The pool observes the index's mutation
        epoch: mutating the index (directly or through the engine
        wrappers) invalidates the current fork generation, and the next
        :meth:`run` transparently re-forks before serving.
    workers:
        Pool size, resolved through
        :func:`~repro.parallel.pool.resolve_workers`; below 2 (or on a
        platform without fork) the pool runs every batch through the
        in-process serial reference loop.
    warm:
        Pre-evaluate every subdomain's representative ranking prefix
        before forking, so workers inherit a hot index instead of each
        recomputing the shared prefixes on first use (default: True).

    The pool is a context manager; :meth:`close` (or leaving the
    ``with`` block) shuts the workers down and releases the shared
    segments.  :meth:`run` is not reentrant — one batch at a time.
    """

    #: Chunks dispatched per worker per batch: 1 keeps IPC minimal
    #: (chunksize = ceil(len(batch) / workers), the fallback driver's
    #: granularity); the second wave lets faster workers steal load
    #: when request costs are skewed.
    CHUNK_WAVES = 2

    def __init__(
        self,
        engine: "ImprovementQueryEngine",
        workers: "int | str | None" = None,
        warm: bool = True,
    ) -> None:
        self._engine = engine
        self._workers = resolve_workers(workers)
        self._forked = self._workers >= 2 and pool_start_method() == "fork"
        self._warm = warm
        self._token = f"repro-pool-{os.getpid()}-{id(self):x}"
        self._stores: "dict[str, SharedArrayStore]" = {}  #: one store per group
        self._specs: "dict[str, dict[str, ArraySpec]]" = {}  #: group -> key -> spec
        self._executor: "ProcessPoolExecutor | None" = None
        self._epoch = -1
        self._shard_epochs: "tuple[int, ...]" = ()
        self._lock = threading.Lock()
        self._closed = False
        self.generation = 0  #: fork generations started (bumps on refresh)
        self.restarts = 0  #: refreshes forced by worker crashes
        self.partial_refreshes = 0  #: refreshes that kept some shard segments
        self.shards_reshared = 0  #: shard groups re-exported across refreshes
        self.mmap_resident = 0  #: hot arrays left page-cache-shared (no shm copy)
        self._start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> "ImprovementQueryEngine":
        """The engine this pool was created for."""
        return self._engine

    @property
    def workers(self) -> int:
        """Resolved worker count (0/1 = in-process serial reference)."""
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def stale(self) -> bool:
        """True when the index mutated after the current fork generation.

        The next :meth:`run` refreshes a stale pool automatically; the
        flag exists so callers (and the serving layer's stats) can
        observe that an invalidation happened.
        """
        return self._epoch != self._engine.index.epoch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _start(self) -> None:
        """Begin a fork generation: share matrices, park state, fork.

        Hot arrays come from the index's own
        :meth:`~repro.core.subdomain.SubdomainIndex.hot_arrays` plan,
        one :class:`SharedArrayStore` per group; a key whose group
        survived a scoped refresh keeps its existing segment (the
        owning shard's epoch never moved, so the bytes are current).

        A failure after any store exists (a hot matrix that will not
        export, executor creation itself) tears the partial generation
        down before re-raising — otherwise the shared segments outlive
        the exception until GC happens to collect the pool, which is
        exactly the window the sanitizer harness flags as a leak.
        """
        index = self._engine.index
        self._epoch = index.epoch
        self._shard_epochs = tuple(index.shard_epochs)
        self.generation += 1
        if self._warm:
            for s in range(index.shards):
                shard = index.shard(s)
                for sid in range(shard.num_subdomains):
                    shard.prefix(sid)
        if not self._forked:
            return
        try:
            mmap_resident = 0
            for key, group, owner, attr in index.hot_arrays():
                if key in self._specs.get(group, {}):
                    continue  # segment survived a scoped refresh untouched
                array = np.asarray(getattr(owner, attr))
                if _mmap_backed(array):
                    # Already file-backed: forked workers inherit the
                    # read-only mapping and share its pages through the
                    # OS page cache — no spec means the worker
                    # initializer leaves the inherited binding alone.
                    mmap_resident += 1
                    continue
                store = self._stores.get(group)
                if store is None:
                    store = self._stores[group] = SharedArrayStore()
                self._specs.setdefault(group, {})[key] = store.share(array)
            self.mmap_resident = mmap_resident
            _POOL_ENGINES[self._token] = self._engine
            flat_specs = {
                key: spec
                for group_specs in self._specs.values()
                for key, spec in group_specs.items()
            }
            self._executor = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=get_context("fork"),
                initializer=_init_pool_worker,
                initargs=(self._token, flat_specs),
            )
        except BaseException:
            self._teardown()
            raise

    def _teardown(self, groups: "set[str] | None" = None) -> None:
        """End the current fork generation (workers first, then segments).

        ``groups`` scopes the segment teardown to the named store
        groups — a stale refresh passes only ``global`` plus the moved
        shard groups, keeping unmutated shards' segments alive across
        the re-fork; ``None`` closes everything.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        _POOL_ENGINES.pop(self._token, None)
        doomed = set(self._stores) if groups is None else groups & set(self._stores)
        for group in doomed:
            self._stores.pop(group).close()
            self._specs.pop(group, None)

    def _stale_groups(self) -> "set[str] | None":
        """Store groups invalidated by mutations since the last fork.

        The ``global`` group is always stale — every mutation kind
        touches the object matrix or the global weights; a ``shard:<s>``
        group is stale only when that shard's epoch moved.  ``None``
        means the shard topology itself changed and nothing can be
        scoped (re-share everything).
        """
        current = tuple(self._engine.index.shard_epochs)
        if len(current) != len(self._shard_epochs):
            return None
        moved = {"global"}
        moved.update(
            f"shard:{s}"
            for s, (old, new) in enumerate(zip(self._shard_epochs, current))
            if old != new
        )
        return moved

    def _refresh_stale(self) -> None:
        """Re-fork against the mutated index, re-sharing only moved groups."""
        doomed = self._stale_groups()
        if doomed is not None and self._stores:
            kept = set(self._stores) - doomed
            if kept:
                self.partial_refreshes += 1
            self.shards_reshared += sum(
                1 for g in doomed if g in self._stores and g.startswith("shard:")
            )
        self._teardown(doomed)
        self._start()

    def refresh(self) -> None:
        """Tear down and re-fork against the engine's *current* index."""
        if self._closed:
            raise ReproError("cannot refresh a closed PersistentPool")
        self._teardown()
        self._start()

    def close(self) -> None:
        """Shut the workers down and release the shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._teardown()

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, requests: "Sequence[IQRequest]") -> "list[IQResult]":
        """Evaluate a batch, results in request order (the run_batch contract).

        The first failed request's error re-raises — matching the
        serial loop, which stops at the first failure — but the pool
        itself survives and stays warm for the next batch.
        """
        results: "list[IQResult]" = []
        for ok, value in self.run_outcomes(requests):
            if not ok:
                if isinstance(value, BaseException):
                    raise value
                raise ReproError(f"pooled request failed: {value!r}")
            results.append(value)  # type: ignore[arg-type]
        return results

    def run_outcomes(
        self, requests: "Sequence[IQRequest]"
    ) -> "list[tuple[bool, IQResult | Exception]]":
        """Evaluate a batch, capturing each request's outcome individually.

        Returns one ``(ok, value)`` pair per request, in request order:
        ``(True, IQResult)`` on success, ``(False, exception)`` on a
        per-request failure.  This is the serving layer's entry point —
        one poisoned request must produce one error *response*, not a
        failed batch.
        """
        batch = tuple(requests)
        _validate_requests(batch)
        if self._closed:
            raise ReproError("PersistentPool is closed")
        if not self._lock.acquire(blocking=False):
            raise ReproError("PersistentPool.run is not reentrant: a batch is running")
        try:
            if self.stale:
                # Epoch moved: the forked workers hold a pre-mutation
                # index.  Re-fork rather than serve stale answers,
                # re-sharing only the segment groups that mutated.
                self._refresh_stale()
            if not batch:
                return []
            if not self._forked:
                return [self._run_serial(request) for request in batch]
            try:
                return self._dispatch(batch)
            except BrokenProcessPool:
                # A worker died mid-batch (OOM kill, signal, hard
                # crash).  Re-fork once and retry the whole batch —
                # requests are read-only so replaying is safe.
                self.restarts += 1
                self._teardown()
                self._start()
                try:
                    return self._dispatch(batch)
                except BrokenProcessPool as exc:
                    raise ReproError(
                        "persistent pool workers died twice running one batch; "
                        "giving up (is the host out of memory?)"
                    ) from exc
        finally:
            self._lock.release()

    def _run_serial(self, request: IQRequest) -> "tuple[bool, IQResult | Exception]":
        try:
            return (True, _run_one(self._engine, request))
        except Exception as exc:  # noqa: BLE001 - mirror the worker-side capture
            return (False, exc)

    def _chunks(self, total: int) -> "Iterator[tuple[int, int]]":
        return chunk_bounds(total, min(total, self._workers * self.CHUNK_WAVES))

    def _dispatch(
        self, batch: "tuple[IQRequest, ...]"
    ) -> "list[tuple[bool, IQResult | Exception]]":
        if self._executor is None:  # pragma: no cover - guarded by _forked
            raise ReproError("persistent pool has no executor")
        futures = [
            self._executor.submit(_chunk_task, self._token, start, batch[start:stop])
            for start, stop in self._chunks(len(batch))
        ]
        outcomes: "list[tuple[bool, IQResult | Exception]]" = []
        for future in futures:
            outcomes.extend(future.result())  # type: ignore[arg-type]
        return outcomes
