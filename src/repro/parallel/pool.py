"""Worker-count resolution and pool/start-method helpers.

Every parallel entry point resolves its worker count through
:func:`resolve_workers` so the precedence is uniform project-wide: an
explicit ``workers=`` argument wins, the ``REPRO_WORKERS`` environment
variable is the ambient default, and anything below 2 selects the
serial reference path.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.errors import ValidationError

__all__ = ["WORKERS_ENV", "pool_start_method", "resolve_workers"]

#: Environment variable consulted when no explicit ``workers=`` is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit argument > ``REPRO_WORKERS`` env var > 0
    (serial).  Counts below 2 mean "run the serial reference path";
    negative counts and unparsable env values raise
    :class:`~repro.errors.ValidationError`.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ValidationError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from exc
    else:
        try:
            workers = int(workers)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"workers must be an integer, got {workers!r}") from exc
    if workers < 0:
        raise ValidationError(f"workers must be non-negative, got {workers}")
    return workers


def pool_start_method() -> str:
    """The start method pools use: ``fork`` when available, else default.

    Fork keeps worker startup cheap and lets the batch driver share the
    engine by copy-on-write; on platforms without it (Windows, some
    macOS configs) the platform default is used and all task state must
    travel through explicit shared memory or pickling.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)
