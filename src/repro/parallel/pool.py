"""Worker-count resolution and pool/start-method helpers.

Every parallel entry point resolves its worker count through
:func:`resolve_workers` so the precedence is uniform project-wide: an
explicit ``workers=`` argument wins, the ``REPRO_WORKERS`` environment
variable is the ambient default, and anything below 2 selects the
serial reference path.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.errors import ValidationError

__all__ = ["WORKERS_ENV", "pool_start_method", "resolve_workers"]

#: Environment variable consulted when no explicit ``workers=`` is given.
WORKERS_ENV = "REPRO_WORKERS"


def _cpu_ceiling() -> int:
    """The largest worker count that makes sense on this host.

    ``os.cpu_count()`` capped from below at 2: an *explicit* request for
    parallelism on a small host still exercises the pool (and all its
    parity guarantees) instead of silently degrading to the serial path.
    """
    return max(2, os.cpu_count() or 1)


def resolve_workers(workers: "int | str | None" = None) -> int:
    """Resolve the effective worker count.

    Precedence: explicit argument > ``REPRO_WORKERS`` env var > 0
    (serial).  Counts of 0 and 1 mean "run the serial reference path"
    and pass through unchanged; counts of 2 or more are clamped to
    ``os.cpu_count()`` (but never below 2, see :func:`_cpu_ceiling`) so
    an oversized request cannot oversubscribe the host.  The string
    ``"auto"`` (argument or env var) means "all cores"; negative counts
    and any other non-integer raise
    :class:`~repro.errors.ValidationError`.
    """
    source = "workers"
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 0
        workers = raw
        source = WORKERS_ENV
    if isinstance(workers, str):
        text = workers.strip().lower()
        if text == "auto":
            count = os.cpu_count() or 1
            return count if count >= 2 else 0
        try:
            workers = int(text)
        except ValueError as exc:
            raise ValidationError(
                f"{source} must be an integer or 'auto', got {workers!r}"
            ) from exc
    else:
        try:
            workers = int(workers)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"workers must be an integer, got {workers!r}") from exc
    if workers < 0:
        raise ValidationError(f"workers must be non-negative, got {workers}")
    if workers < 2:
        return workers
    return min(workers, _cpu_ceiling())


def pool_start_method() -> str:
    """The start method pools use: ``fork`` when available, else default.

    Fork keeps worker startup cheap and lets the batch driver share the
    engine by copy-on-write; on platforms without it (Windows, some
    macOS configs) the platform default is used and all task state must
    travel through explicit shared memory or pickling.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return "fork"
    return multiprocessing.get_start_method(allow_none=False)
