"""Regeneration of every figure in the paper's evaluation (§6.3).

One function per paper artefact, each returning a
:class:`~repro.bench.harness.TableResult` whose rows are the series the
figure plots.  Absolute numbers differ from the paper (pure Python vs
their C++/C# server); the *shape* — who wins, by what rough factor,
which direction the trend goes — is what EXPERIMENTS.md records.

Schemes (§6.1): Efficient-IQ (ours), RTA-IQ, Greedy, Random.
"""

from __future__ import annotations

import numpy as np

from repro.constants import EPS_TIME
from repro.baselines.rta import RTAEvaluator
from repro.bench.config import BenchConfig, load_config
from repro.bench.harness import TableResult, time_call
from repro.core.cost import euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.core.solvers import get_solver
from repro.core.subdomain import SubdomainIndex
from repro.core.updates import add_object, add_query, remove_object, remove_query
from repro.data.realworld import simulate_house, simulate_vehicle
from repro.errors import ReproError
from repro.data.synthetic import generate
from repro.data.workloads import generate_queries
from repro.index.dominant_graph import DominantGraph
from repro.index.rtree import RTree
from repro.parallel import IQRequest, resolve_workers, run_batch

__all__ = [
    "fig4_indexing_objects",
    "fig5_indexing_queries",
    "fig6_indexing_real",
    "fig7_to_9_query_processing_objects",
    "fig10_to_11_query_processing_queries",
    "fig12_query_processing_real",
    "fig13_dimensionality",
    "x1_exhaustive_gap",
    "x2_ese_ablation",
    "x3_updates_ablation",
    "x4_index_mode_ablation",
    "SCHEMES",
]

SCHEMES = ("Efficient-IQ", "RTA-IQ", "Greedy", "Random")


def _dataset(kind: str, n: int, d: int, config: BenchConfig) -> Dataset:
    return Dataset(generate(kind, n, d, seed=config.seed))


def _queries(kind: str, m: int, d: int, config: BenchConfig) -> QuerySet:
    return generate_queries(kind, m, d, seed=config.seed + 1, k_range=config.k_range)


def _data_bytes(dataset: Dataset) -> int:
    return dataset.n * dataset.dim * 8


# ----------------------------------------------------------------------
# Figure 4: indexing cost vs |D| (Efficient-IQ vs DominantGraph)
# ----------------------------------------------------------------------
def fig4_indexing_objects(config: BenchConfig | None = None) -> TableResult:
    """Figure 4: index build time/size vs |D|, Efficient-IQ vs DominantGraph."""
    config = config or load_config()
    table = TableResult(
        title=f"Figure 4 — indexing cost vs number of objects [{config.name} scale]",
        columns=[
            "|D|",
            "EfficientIQ time (s)",
            "DominantGraph time (s)",
            "EfficientIQ size (%)",
            "DominantGraph size (%)",
        ],
        notes=(
            "index time comparable between the two; Efficient-IQ size "
            "slightly higher; both grow with |D| (paper Fig. 4)"
        ),
    )
    for n in config.object_sweep:
        dataset = _dataset("IN", n, config.dimensions, config)
        queries = _queries("UN", config.num_queries, config.dimensions, config)
        index, ours_time = time_call(
            SubdomainIndex, dataset, queries, mode=config.index_mode
        )
        graph, dg_time = time_call(DominantGraph, dataset.matrix)
        base = _data_bytes(dataset)
        table.add(
            n,
            ours_time,
            dg_time,
            100.0 * index.memory_estimate() / base,
            100.0 * graph.memory_estimate() / base,
        )
    return table


# ----------------------------------------------------------------------
# Figure 5: indexing cost vs |Q| (Efficient-IQ vs plain R-tree)
# ----------------------------------------------------------------------
def fig5_indexing_queries(config: BenchConfig | None = None) -> TableResult:
    """Figure 5: index build time/size vs |Q|, Efficient-IQ vs plain R-tree."""
    config = config or load_config()
    table = TableResult(
        title=f"Figure 5 — indexing cost vs number of queries [{config.name} scale]",
        columns=[
            "|Q|",
            "EfficientIQ time (s)",
            "R-tree time (s)",
            "time overhead (%)",
            "EfficientIQ size (B)",
            "R-tree size (B)",
            "size overhead (%)",
        ],
        notes=(
            "Efficient-IQ needs ~20-25% more build time and ~10% more "
            "space than the bare query R-tree (paper Fig. 5)"
        ),
    )
    for m in config.query_sweep:
        dataset = _dataset("IN", config.num_objects, config.dimensions, config)
        queries = _queries("UN", m, config.dimensions, config)
        index, ours_time = time_call(
            SubdomainIndex, dataset, queries, mode=config.index_mode
        )
        items = [(w, int(j)) for j, w in enumerate(queries.weights)]
        rtree, rtree_time = time_call(RTree.bulk_load, queries.dim, items, max_entries=16)
        ours_size = index.memory_estimate()
        rtree_size = rtree.memory_estimate()
        table.add(
            m,
            ours_time,
            rtree_time,
            100.0 * (ours_time - rtree_time) / max(rtree_time, EPS_TIME),
            ours_size,
            rtree_size,
            100.0 * (ours_size - rtree_size) / max(rtree_size, 1),
        )
    return table


# ----------------------------------------------------------------------
# Figure 6: indexing cost on the (simulated) real datasets
# ----------------------------------------------------------------------
def fig6_indexing_real(config: BenchConfig | None = None) -> TableResult:
    """Figure 6: indexing cost on the simulated VEHICLE/HOUSE datasets."""
    config = config or load_config()
    table = TableResult(
        title=f"Figure 6 — indexing cost on real-world datasets [{config.name} scale]",
        columns=[
            "dataset",
            "EfficientIQ time (s)",
            "R-tree time (s)",
            "DominantGraph time (s)",
            "EfficientIQ size (%)",
            "R-tree size (%)",
            "DominantGraph size (%)",
        ],
        notes="consistent with the synthetic results (paper Fig. 6)",
    )
    generators = {
        "VEHICLE": lambda n: simulate_vehicle(n, seed=config.seed),
        "HOUSE": lambda n: simulate_house(n, seed=config.seed),
    }
    for name, make in generators.items():
        dataset = make(config.real_sizes[name])
        m = max(10, int(dataset.n * config.real_query_fraction))
        queries = _queries("UN", m, dataset.dim, config)
        index, ours_time = time_call(
            SubdomainIndex, dataset, queries, mode=config.index_mode
        )
        items = [(w, int(j)) for j, w in enumerate(queries.weights)]
        rtree, rtree_time = time_call(RTree.bulk_load, queries.dim, items, max_entries=16)
        graph, dg_time = time_call(DominantGraph, dataset.matrix)
        base = _data_bytes(dataset)
        table.add(
            name,
            ours_time,
            rtree_time,
            dg_time,
            100.0 * index.memory_estimate() / base,
            100.0 * rtree.memory_estimate() / base,
            100.0 * graph.memory_estimate() / base,
        )
    return table


# ----------------------------------------------------------------------
# Figures 7-12: IQ processing time and strategy quality
# ----------------------------------------------------------------------
def _run_schemes(
    dataset: Dataset,
    queries: QuerySet,
    config: BenchConfig,
    workers: int | None = None,
):
    """Average per-IQ time (ms) and cost-per-hit for each scheme.

    With ``workers`` resolving to 2+ (argument or ``REPRO_WORKERS``),
    each scheme's IQ sweep is evaluated through the
    :func:`repro.parallel.batch.run_batch` driver instead of the serial
    loop; reported times are then wall-clock-per-IQ of the batch.
    """
    pool_size = resolve_workers(workers)
    if pool_size >= 2:
        return _run_schemes_batch(dataset, queries, config, pool_size)
    index = SubdomainIndex(dataset, queries, mode=config.index_mode)  # repro: noqa[RPR012] (bench times raw construction)
    ese = StrategyEvaluator(index)
    rta = RTAEvaluator(index)
    rng = np.random.default_rng(config.seed + 7)
    # Improvement queries target objects that need improving: sample a
    # candidate pool and keep the least-hit members (the paper's
    # motivating scenario — weak products, trailing candidates).
    pool = rng.choice(dataset.n, size=min(dataset.n, 8 * config.iq_repeats), replace=False)
    pool = sorted(pool, key=lambda t: ese.hits(int(t)))
    targets = pool[: config.iq_repeats]
    cost = euclidean_cost(dataset.dim)
    tau = min(config.tau, queries.m)

    # Every scheme dispatches through the solver registry (RTA-IQ runs
    # the "efficient" search over the RTA evaluation engine — only the
    # per-candidate evaluator differs, matching the paper's comparison).
    efficient = get_solver("efficient")
    greedy = get_solver("greedy")
    random_solver = get_solver("random")
    runners = {
        "Efficient-IQ": (
            lambda t: efficient.min_cost(ese, int(t), tau, cost),
            lambda t: efficient.max_hit(ese, int(t), config.budget, cost),
        ),
        "RTA-IQ": (
            lambda t: efficient.min_cost(rta, int(t), tau, cost),
            lambda t: efficient.max_hit(rta, int(t), config.budget, cost),
        ),
        "Greedy": (
            lambda t: greedy.min_cost(ese, int(t), tau, cost),
            lambda t: greedy.max_hit(ese, int(t), config.budget, cost),
        ),
        "Random": (
            lambda t: random_solver.min_cost(ese, int(t), tau, cost, seed=config.seed),
            lambda t: random_solver.max_hit(ese, int(t), config.budget, cost, seed=config.seed),
        ),
    }
    times = {}
    qualities = {}
    for scheme, (run_min_cost, run_max_hit) in runners.items():
        elapsed = 0.0
        ratios = []
        for target in targets:
            result, seconds = time_call(run_min_cost, target)
            elapsed += seconds
            ratios.append(result.cost_per_hit)
            result, seconds = time_call(run_max_hit, target)
            elapsed += seconds
            ratios.append(result.cost_per_hit)
        times[scheme] = 1000.0 * elapsed / (2 * len(targets))
        finite = [r for r in ratios if np.isfinite(r)]
        qualities[scheme] = float(np.mean(finite)) if finite else float("inf")
    return times, qualities


def _run_schemes_batch(
    dataset: Dataset, queries: QuerySet, config: BenchConfig, workers: int
):
    """The parallel variant of :func:`_run_schemes`: same target pool and
    schemes, each sweep submitted as one :func:`run_batch` call."""
    from repro.core.engine import ImprovementQueryEngine

    engine = ImprovementQueryEngine(dataset, queries, mode=config.index_mode)
    rng = np.random.default_rng(config.seed + 7)
    pool = rng.choice(dataset.n, size=min(dataset.n, 8 * config.iq_repeats), replace=False)
    pool = sorted(pool, key=lambda t: engine.hits(int(t)))
    targets = [int(t) for t in pool[: config.iq_repeats]]
    tau = min(config.tau, queries.m)
    methods = {
        "Efficient-IQ": "efficient",
        "RTA-IQ": "rta",
        "Greedy": "greedy",
        "Random": "random",
    }
    times = {}
    qualities = {}
    for scheme, method in methods.items():
        options = (("seed", config.seed),) if method == "random" else ()
        batch = [
            IQRequest("min_cost", t, float(tau), method=method, options=options)
            for t in targets
        ] + [
            IQRequest("max_hit", t, config.budget, method=method, options=options)
            for t in targets
        ]
        results, seconds = time_call(run_batch, engine, batch, workers=workers)
        times[scheme] = 1000.0 * seconds / len(batch)
        finite = [r.cost_per_hit for r in results if np.isfinite(r.cost_per_hit)]
        qualities[scheme] = float(np.mean(finite)) if finite else float("inf")
    return times, qualities


def _query_processing_table(
    title, axis_name, points, make_data, config, note, workers=None
):
    table = TableResult(
        title=title,
        columns=[axis_name]
        + [f"{s} time (ms)" for s in SCHEMES]
        + [f"{s} cost/hit" for s in SCHEMES],
        notes=note,
    )
    for value in points:
        dataset, queries = make_data(value)
        times, qualities = _run_schemes(dataset, queries, config, workers=workers)
        table.add(
            value,
            *[times[s] for s in SCHEMES],
            *[qualities[s] for s in SCHEMES],
        )
    return table


_PROCESSING_NOTE = (
    "time: Random fastest, Efficient-IQ well below RTA-IQ; quality "
    "(cost/hit): Efficient-IQ = RTA-IQ best, then Greedy, Random worst "
    "(paper Figs. 7-12)"
)


def fig7_to_9_query_processing_objects(
    kind: str, config: BenchConfig | None = None, workers: int | None = None
) -> TableResult:
    """Figures 7 (IN), 8 (CO), 9 (AC): sweep |D|."""
    config = config or load_config()
    figure = {"IN": 7, "CO": 8, "AC": 9}[kind.upper()]

    def make_data(n):
        return (
            _dataset(kind, n, config.dimensions, config),
            _queries("UN", config.num_queries, config.dimensions, config),
        )

    return _query_processing_table(
        f"Figure {figure} — IQ processing on the {kind.upper()} object dataset "
        f"[{config.name} scale]",
        "|D|",
        config.object_sweep,
        make_data,
        config,
        _PROCESSING_NOTE,
        workers=workers,
    )


def fig10_to_11_query_processing_queries(
    kind: str, config: BenchConfig | None = None, workers: int | None = None
) -> TableResult:
    """Figures 10 (UN), 11 (CL): sweep |Q|."""
    config = config or load_config()
    figure = {"UN": 10, "CL": 11}[kind.upper()]

    def make_data(m):
        return (
            _dataset("IN", config.num_objects, config.dimensions, config),
            _queries(kind, m, config.dimensions, config),
        )

    return _query_processing_table(
        f"Figure {figure} — IQ processing on the {kind.upper()} query workload "
        f"[{config.name} scale]",
        "|Q|",
        config.query_sweep,
        make_data,
        config,
        _PROCESSING_NOTE,
        workers=workers,
    )


def fig12_query_processing_real(
    config: BenchConfig | None = None, workers: int | None = None
) -> TableResult:
    """Figure 12: IQ processing time/quality on the simulated real datasets."""
    config = config or load_config()
    table = TableResult(
        title=f"Figure 12 — IQ processing on real-world datasets [{config.name} scale]",
        columns=["dataset"]
        + [f"{s} time (ms)" for s in SCHEMES]
        + [f"{s} cost/hit" for s in SCHEMES],
        notes=_PROCESSING_NOTE,
    )
    generators = {
        "VEHICLE": lambda n: simulate_vehicle(n, seed=config.seed),
        "HOUSE": lambda n: simulate_house(n, seed=config.seed),
    }
    for name, make in generators.items():
        dataset = make(config.real_sizes[name])
        m = max(10, int(dataset.n * config.real_query_fraction))
        queries = _queries("UN", m, dataset.dim, config)
        times, qualities = _run_schemes(dataset, queries, config, workers=workers)
        table.add(
            name,
            *[times[s] for s in SCHEMES],
            *[qualities[s] for s in SCHEMES],
        )
    return table


# ----------------------------------------------------------------------
# Figure 13: scalability with the number of function variables
# ----------------------------------------------------------------------
def fig13_dimensionality(config: BenchConfig | None = None) -> TableResult:
    """Figure 13: Efficient-IQ processing cost vs number of variables (1-5)."""
    config = config or load_config()
    table = TableResult(
        title=f"Figure 13 — Efficient-IQ vs number of variables [{config.name} scale]",
        columns=["variables", "time (ms)", "cost/hit"],
        notes="processing time grows sub-linearly with dimensionality (paper Fig. 13)",
    )
    rng = np.random.default_rng(config.seed + 13)
    for d in config.dim_sweep:
        dataset = _dataset("IN", config.num_objects, d, config)
        queries = _queries("UN", config.num_queries, d, config)
        index = SubdomainIndex(dataset, queries, mode=config.index_mode)  # repro: noqa[RPR012] (bench times raw construction)
        ese = StrategyEvaluator(index)
        cost = euclidean_cost(d)
        tau = min(config.tau, queries.m)
        elapsed = 0.0
        ratios = []
        solver = get_solver("efficient")
        for target in rng.integers(0, dataset.n, size=config.iq_repeats):
            result, seconds = time_call(solver.min_cost, ese, int(target), tau, cost)
            elapsed += seconds
            ratios.append(result.cost_per_hit)
            result, seconds = time_call(solver.max_hit, ese, int(target), config.budget, cost)
            elapsed += seconds
            ratios.append(result.cost_per_hit)
        finite = [r for r in ratios if np.isfinite(r)]
        table.add(
            d,
            1000.0 * elapsed / (2 * config.iq_repeats),
            float(np.mean(finite)) if finite else float("inf"),
        )
    return table


# ----------------------------------------------------------------------
# Ablations (claims made in the text rather than plotted)
# ----------------------------------------------------------------------
def x1_exhaustive_gap(config: BenchConfig | None = None) -> TableResult:
    """§6.3.2: exhaustive search is orders of magnitude slower; the
    heuristic's cost stays close to optimal on instances small enough to
    solve exactly."""
    config = config or load_config()
    table = TableResult(
        title="X1 — exact vs heuristic Min-Cost IQ (small instances)",
        columns=["m", "exact time (ms)", "heuristic time (ms)", "cost ratio (heur/exact)"],
        notes=(
            "exact blows up exponentially with m while the heuristic stays "
            "flat; cost ratio stays close to 1 (paper §6.3.2: exhaustive "
            "'takes more than 4 hours' at experiment scale)"
        ),
    )
    rng = np.random.default_rng(config.seed + 17)
    for m in (6, 9, 12, 15):
        dataset = Dataset(rng.random((30, config.dimensions)))
        queries = QuerySet(rng.random((m, config.dimensions)), ks=2)
        evaluator = StrategyEvaluator(SubdomainIndex(dataset, queries))  # repro: noqa[RPR012] (bench times raw construction)
        cost = euclidean_cost(config.dimensions)
        tau = max(2, m // 3)
        exact, exact_time = time_call(get_solver("exhaustive").min_cost, evaluator, 0, tau, cost)
        heuristic, heuristic_time = time_call(get_solver("efficient").min_cost, evaluator, 0, tau, cost)
        ratio = (
            heuristic.total_cost / exact.total_cost
            if exact.satisfied and exact.total_cost > 0
            else 1.0
        )
        table.add(m, 1000 * exact_time, 1000 * heuristic_time, ratio)
    return table


def x2_ese_ablation(config: BenchConfig | None = None) -> TableResult:
    """§4.1: ESE's shared thresholds vs naive full re-evaluation."""
    config = config or load_config()
    table = TableResult(
        title="X2 — ESE vs naive per-query re-evaluation",
        columns=["|Q|", "ESE eval (ms)", "naive eval (ms)", "speedup (x)"],
        notes="ESE amortizes one evaluation per subdomain; naive pays m full top-k sorts",
    )
    rng = np.random.default_rng(config.seed + 19)
    from repro.topk.evaluate import top_k

    for m in config.query_sweep:
        dataset = _dataset("IN", config.num_objects, config.dimensions, config)
        queries = _queries("UN", m, config.dimensions, config)
        index = SubdomainIndex(dataset, queries, mode=config.index_mode)  # repro: noqa[RPR012] (bench times raw construction)
        ese = StrategyEvaluator(index)
        target = 0
        strategy = rng.normal(scale=0.1, size=config.dimensions)
        ese.thresholds(target)  # build the shared cache first (indexing step)
        __, ese_time = time_call(ese.evaluate, target, strategy)

        def naive():
            moved = dataset.matrix.copy()
            moved[target] = moved[target] + strategy
            hits = 0
            for j in range(queries.m):
                weights, k = queries.query(j)
                if target in top_k(moved, weights, k):
                    hits += 1
            return hits

        naive_hits, naive_time = time_call(naive)
        ese_hits = ese.evaluate(target, strategy)
        if naive_hits != ese_hits:
            raise ReproError(
                f"X3 cross-check failed: naive evaluation counts {naive_hits} hits "
                f"but the ESE index counts {ese_hits} (m={m})"
            )
        table.add(m, 1000 * ese_time, 1000 * naive_time, naive_time / max(ese_time, EPS_TIME))
    return table


def x4_index_mode_ablation(config: BenchConfig | None = None) -> TableResult:
    """DESIGN.md §3 design choice: exact vs 'relevant' hyperplane budget.

    The exact mode uses all C(n,2) intersections (the paper's
    formulation); relevant mode keeps only intersections among objects
    reachable by the indexed top-k results.  Answers must be identical;
    the indexing cost difference is the point.
    """
    config = config or load_config()
    table = TableResult(
        title="X4 — subdomain index: exact vs relevant hyperplane budget",
        columns=[
            "|D|",
            "exact hyperplanes",
            "relevant hyperplanes",
            "exact build (s)",
            "relevant build (s)",
            "answers agree",
        ],
        notes=(
            "relevant mode indexes orders of magnitude fewer hyperplanes at "
            "identical answers; exact mode is quadratic in |D|"
        ),
    )
    rng = np.random.default_rng(config.seed + 29)
    for n in [max(30, s // 2) for s in config.object_sweep[:3]]:
        dataset = _dataset("IN", n, config.dimensions, config)
        queries = _queries("UN", min(config.num_queries, 100), config.dimensions, config)
        exact, exact_time = time_call(SubdomainIndex, dataset, queries, mode="exact")
        relevant, relevant_time = time_call(
            SubdomainIndex, dataset, queries, mode="relevant"
        )
        probes = rng.integers(0, n, size=5)
        agree = all(
            StrategyEvaluator(exact).hits(int(t)) == StrategyEvaluator(relevant).hits(int(t))
            for t in probes
        )
        table.add(
            n,
            exact.num_hyperplanes,
            relevant.num_hyperplanes,
            exact_time,
            relevant_time,
            "yes" if agree else "NO",
        )
    return table


def x3_updates_ablation(config: BenchConfig | None = None) -> TableResult:
    """§4.3: incremental maintenance vs full index rebuild."""
    config = config or load_config()
    table = TableResult(
        title="X3 — incremental maintenance vs rebuild (steady state)",
        columns=["operation", "incremental (ms)", "rebuild (ms)", "speedup (x)"],
        notes=(
            "query add/remove far below a rebuild; object updates cheaper or "
            "comparable (boundary registration is warmed first — it is a "
            "one-time cost amortized across a maintenance session)"
        ),
    )
    rng = np.random.default_rng(config.seed + 23)
    dataset = _dataset("IN", max(50, config.num_objects // 4), config.dimensions, config)
    queries = _queries("UN", config.num_queries, config.dimensions, config)

    def fresh():
        return SubdomainIndex(dataset, queries, mode=config.index_mode)  # repro: noqa[RPR012] (bench times raw construction)

    index = fresh()
    __, rebuild_time = time_call(fresh)

    operations = {
        "add query": lambda idx: add_query(idx, rng.random(config.dimensions), 2),
        "remove query": lambda idx: remove_query(idx, 0),
        "add object": lambda idx: add_object(idx, rng.random(config.dimensions)),
        "remove object": lambda idx: remove_object(idx, 0),
    }
    for name, op in operations.items():
        working = fresh()
        working.ensure_boundaries()  # steady state: registration amortized
        __, incremental_time = time_call(op, working)
        table.add(
            name,
            1000 * incremental_time,
            1000 * rebuild_time,
            rebuild_time / max(incremental_time, EPS_TIME),
        )
    return table
