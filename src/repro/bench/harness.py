"""Timing and reporting utilities shared by every benchmark."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "TableResult", "time_call"]


class Stopwatch:
    """Accumulating wall-clock timer (perf_counter based)."""

    def __init__(self):
        self.elapsed = 0.0
        self._started = None

    def __enter__(self):
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return False


def time_call(fn, *args, **kwargs):
    """``(result, seconds)`` of one call."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass
class TableResult:
    """A paper-style results table: title, column headers, data rows.

    ``notes`` carries the comparison the figure is supposed to show
    (who should win, what the trend should be) so EXPERIMENTS.md can be
    assembled straight from the benchmark output.
    """

    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: str = ""

    def add(self, *values) -> None:
        """Append one data row."""
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """Values of one column across all rows."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering of the table."""
        widths = [len(str(c)) for c in self.columns]
        formatted = []
        for row in self.rows:
            cells = [_fmt(v) for v in row]
            formatted.append(cells)
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in formatted:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(cells, widths)))
        if self.notes:
            lines.append("")
            lines.append(f"expected shape: {self.notes}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table to stdout."""
        print()
        print(self.render())
        print()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
