"""Timing and reporting utilities shared by every benchmark.

``Stopwatch`` and ``time_call`` are re-exports of the observe layer's
clock primitives (:mod:`repro.observe.clock`) — the bench harness
predates that layer and every benchmark imports them from here, but the
clock itself now lives behind the RPR014 seam like all other timing.
"""

from __future__ import annotations

import json

from repro.constants import EPS_TIME
from repro.observe.clock import Stopwatch, time_call
from dataclasses import dataclass, field

__all__ = ["BenchRecord", "Stopwatch", "TableResult", "time_call", "write_bench_json"]

#: Schema tag written into every BENCH_*.json file.
BENCH_SCHEMA = "repro-bench-regression/1"


@dataclass
class TableResult:
    """A paper-style results table: title, column headers, data rows.

    ``notes`` carries the comparison the figure is supposed to show
    (who should win, what the trend should be) so EXPERIMENTS.md can be
    assembled straight from the benchmark output.
    """

    title: str
    columns: list
    rows: list = field(default_factory=list)
    notes: str = ""

    def add(self, *values) -> None:
        """Append one data row."""
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        """Values of one column across all rows."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering of the table."""
        widths = [len(str(c)) for c in self.columns]
        formatted = []
        for row in self.rows:
            cells = [_fmt(v) for v in row]
            formatted.append(cells)
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in formatted:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(cells, widths)))
        if self.notes:
            lines.append("")
            lines.append(f"expected shape: {self.notes}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table to stdout."""
        print()
        print(self.render())
        print()


@dataclass
class BenchRecord:
    """One literal-vs-vectorized measurement of the regression harness.

    ``literal_seconds`` times the pre-optimization code path (BSP
    partition loop / per-query closed-form loop); ``vectorized_seconds``
    times the batched replacement on the *same* inputs, after a parity
    check that both produced identical results.
    """

    figure: str  #: paper artefact the configuration comes from (fig4/fig5/fig7)
    case: str  #: human-readable point on the figure's sweep axis
    config: dict  #: the generating parameters (sizes, seed, mode, ...)
    literal_seconds: float
    vectorized_seconds: float
    #: ExecutionPlan.to_dict() of the benchmarked call, when the measured
    #: stage belongs to a planned improvement query (fig7); None for
    #: stages with no solver involved (fig4/fig5 index builds).
    plan: dict | None = None

    @property
    def speedup(self) -> float:
        """Wall-clock ratio literal / vectorized (higher is better)."""
        return self.literal_seconds / max(self.vectorized_seconds, EPS_TIME)

    def to_dict(self) -> dict:
        """JSON-ready dict (the ``records[]`` entry of BENCH_*.json)."""
        payload = {
            "figure": self.figure,
            "case": self.case,
            "config": dict(self.config),
            "literal_seconds": self.literal_seconds,
            "vectorized_seconds": self.vectorized_seconds,
            "speedup": self.speedup,
        }
        if self.plan is not None:
            payload["plan"] = dict(self.plan)
        return payload


def summarize_records(records) -> dict:
    """Per-figure speedup summary (min / median / max)."""
    by_figure: dict[str, list[float]] = {}
    for record in records:
        by_figure.setdefault(record.figure, []).append(record.speedup)
    summary = {}
    for figure, speedups in sorted(by_figure.items()):
        ordered = sorted(speedups)
        summary[figure] = {
            "points": len(ordered),
            "min_speedup": ordered[0],
            "median_speedup": ordered[len(ordered) // 2],
            "max_speedup": ordered[-1],
        }
    return summary


def write_bench_json(records, path, *, scale: str, extra: dict | None = None) -> dict:
    """Serialize regression records to ``path``; returns the payload."""
    payload = {
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "summary": summarize_records(records),
        "records": [record.to_dict() for record in records],
    }
    if extra:
        payload.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return payload


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)
