"""Benchmark configuration (paper Table 2, scaled for pure Python).

The paper's defaults (|D| = 100,000, |Q| = 10,000, tau = 250,
beta = 50, 3 dimensions) assume a C++ engine on a Xeon server.  The
reproduction is pure Python, so the default *bench* scale shrinks every
axis while preserving the ratios that drive the comparisons; set
``REPRO_BENCH_SCALE=paper`` to run the original sizes (expect hours) or
``REPRO_BENCH_SCALE=tiny`` for CI smoke runs.

Each figure's sweep is expressed relative to these defaults exactly as
in Table 2 (ranges 0.5x-2x around the default for |D|, 0.5x-1.5x for
|Q|, and so on).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["BenchConfig", "load_config", "SCALES"]


@dataclass(frozen=True)
class BenchConfig:
    """One benchmark scale: Table 2 with concrete numbers."""

    name: str
    num_objects: int  #: |D| default
    object_sweep: tuple  #: Figure 4 / 7-9 x-axis
    num_queries: int  #: |Q| default
    query_sweep: tuple  #: Figure 5 / 10-11 x-axis
    tau: int  #: Min-Cost goal
    budget: float  #: Max-Hit budget (Euclidean cost units on [0,1]^d)
    dimensions: int = 3
    dim_sweep: tuple = (1, 2, 3, 4, 5)  #: Figure 13 x-axis
    k_range: tuple = (1, 10)
    iq_repeats: int = 3  #: IQs averaged per measurement point (paper: 100)
    index_mode: str = "relevant"  #: subdomain index mode for engine benches
    seed: int = 20170321
    real_sizes: dict = field(
        default_factory=lambda: {"VEHICLE": 800, "HOUSE": 1000}
    )  #: rows for the simulated real datasets (paper: 37,051 / 100,000)
    real_query_fraction: float = 1 / 3  #: paper: |Q| = |D| / 3 for real data


SCALES = {
    "tiny": BenchConfig(
        name="tiny",
        num_objects=120,
        object_sweep=(60, 120, 240),
        num_queries=60,
        query_sweep=(30, 60, 90),
        tau=5,
        budget=0.5,
        k_range=(1, 5),
        iq_repeats=1,
        real_sizes={"VEHICLE": 100, "HOUSE": 120},
    ),
    "bench": BenchConfig(
        name="bench",
        num_objects=600,
        object_sweep=(300, 600, 900, 1200),
        num_queries=200,
        query_sweep=(100, 200, 300),
        tau=10,
        budget=1.0,
        iq_repeats=3,
        real_sizes={"VEHICLE": 800, "HOUSE": 1000},
    ),
    "paper": BenchConfig(
        name="paper",
        num_objects=100_000,
        object_sweep=(50_000, 100_000, 150_000, 200_000),
        num_queries=10_000,
        query_sweep=(5_000, 10_000, 15_000),
        tau=250,
        budget=50.0,
        k_range=(1, 50),
        iq_repeats=100,
        real_sizes={"VEHICLE": 37_051, "HOUSE": 100_000},
    ),
}


def load_config(scale: str | None = None) -> BenchConfig:
    """Resolve the benchmark scale (arg > REPRO_BENCH_SCALE env > bench)."""
    name = scale or os.environ.get("REPRO_BENCH_SCALE", "bench")
    config = SCALES.get(name)
    if config is None:
        raise ValidationError(f"unknown bench scale {name!r}; choose from {sorted(SCALES)}")
    return config
