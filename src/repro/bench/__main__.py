"""``python -m repro.bench`` — benchmark-regression entry point."""

import sys

from repro.bench.regression import main

if __name__ == "__main__":
    sys.exit(main())
