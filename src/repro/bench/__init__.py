"""Benchmark harness: configuration, timers, and per-figure runners."""

from repro.bench.config import SCALES, BenchConfig, load_config
from repro.bench.harness import Stopwatch, TableResult, time_call

__all__ = [
    "BenchConfig",
    "load_config",
    "SCALES",
    "TableResult",
    "Stopwatch",
    "time_call",
]
