"""Benchmark harness: configuration, timers, and per-figure runners."""

from repro.bench.config import SCALES, BenchConfig, load_config
from repro.bench.harness import (
    BenchRecord,
    Stopwatch,
    TableResult,
    time_call,
    write_bench_json,
)
from repro.bench.regression import run_regression

__all__ = [
    "BenchConfig",
    "BenchRecord",
    "load_config",
    "run_regression",
    "SCALES",
    "TableResult",
    "Stopwatch",
    "time_call",
    "write_bench_json",
]
