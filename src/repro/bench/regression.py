"""Benchmark-regression harness: literal vs vectorized code paths.

Re-runs the Figure 4, 5, and 7 configurations with both implementations
of each optimized stage and records wall-clock plus speedup:

* **fig4 / fig5** — full :class:`~repro.core.subdomain.SubdomainIndex`
  builds with ``partition_method="literal"`` (the BSP loop of
  Algorithm 1) vs ``"vectorized"`` (one sign-matrix partition), sweeping
  |D| (fig4) and |Q| (fig5).  Both builds must produce byte-identical
  signature -> member partitions or the run aborts.
* **fig7** — candidate generation on the Figure 7 IQ-processing
  configuration: :func:`~repro.core._search.generate_candidates` with
  ``method="loop"`` (per-query :func:`min_cost_to_hit`) vs
  ``method="auto"`` (batched closed form), per sampled target.  The two
  paths must agree on candidate ids, vectors, and costs.

Three more figures cover the parallel execution layer (PR4), reusing
the same record shape with *serial* in the ``literal_seconds`` slot and
the optimized path in ``vectorized_seconds``:

* **par_index** — serial vs worker-pool ``SubdomainIndex`` construction
  at the fig7 configuration in ``mode="exact"`` (where construction is
  the cost center), for each benched worker count; partitions must be
  bit-for-bit identical.
* **par_batch** — the fig7 IQ sweep evaluated serially vs through a
  pre-warmed :class:`repro.parallel.persistent.PersistentPool` (fork
  once, shm-resident matrices, chunked dispatch); pool startup is
  untimed because it amortizes across a serving process's lifetime, and
  per-request results must agree with the serial reference.
* **serve** — the same sweep as a JSONL stream through
  :func:`repro.parallel.server.serve_stream`: serial-mode server vs
  pooled server, response lines byte-identical, with the pooled run's
  requests/second recorded as the serving-throughput figure.
* **persist** — a fresh ``mode="exact"`` build vs
  :meth:`SubdomainIndex.load` of the saved ``.npz`` round-trip; the
  restored index must serve identical answers.

Two figures cover the sharded index layer (PR8), same record shape:

* **shard_build** — one monolithic build (``literal_seconds``) vs a
  K-shard :class:`~repro.core.sharding.ShardedSubdomainIndex` build
  (``vectorized_seconds``) on the same inputs; every probe target's
  Eq. 6 thresholds and hit mask must match the monolith float-exactly.
* **shard_update** — incremental maintenance: rebuild the whole
  K-shard index on the post-insert workload (``literal_seconds``) vs
  routing one ``add_query`` into its owning shard
  (``vectorized_seconds``).  The update touches exactly one shard, so
  it must beat the rebuild outright *even on a single core* — the win
  is work avoidance, not parallelism — which is why this figure gets
  its own :data:`CHECK_SINGLE_CORE_FLOORS` entry.

``par_index`` additionally records a ``shards=K`` case: serial vs
worker-pool construction of the *sharded* index (one process group per
shard), held to per-shard bit-identical partitions.

Two figures cover the native-kernel and index-residency layer (PR9):

* **native** — every registered hot-path kernel
  (:mod:`repro.native`) timed under the pure-python backend
  (``literal_seconds``) vs the resolved backend
  (``vectorized_seconds``), outputs bit-exact; with numba absent the
  resolved backend degrades to python and the figure documents the
  fallback (~1x), with numba present ``--check`` holds the jitted
  kernels to an absolute floor.
* **mmap_load** — the same persisted index opened from the compressed
  ``.npz`` layout (full decompression) vs the mmap layout (manifest +
  ``.npy`` header opens) at each benched |D|; decompression grows with
  index size while the mmap open stays roughly flat.

One figure covers the observability layer (PR10):

* **analyze_overhead** — the fig7-shaped IQ sweep run through the plain
  engine calls (``literal_seconds``) vs through ``engine.analyze``
  (``vectorized_seconds``, the ``EXPLAIN ANALYZE`` path with the stage
  recorder active and the stats store recording).  Results must be
  byte-identical; the figure's "speedup" is plain/analyzed, so values
  near 1x mean the observation layer is near-free, and the
  :data:`CHECK_ANALYZE_FLOORS` gate fails ``--check`` if analyzed runs
  ever cost more than double the plain ones.

``run_regression`` drives all of them and optionally writes a
``BENCH_*.json`` file (schema documented in EXPERIMENTS.md).  The
``--smoke`` mode truncates every sweep and forces the tiny scale so CI
can execute the whole harness in seconds.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.constants import ATOL_PARITY
from repro.bench.config import BenchConfig, load_config
from repro.bench.harness import (
    BENCH_SCHEMA,
    BenchRecord,
    summarize_records,
    time_call,
    write_bench_json,
)
from repro.core._search import SearchState, generate_candidates
from repro.core.cost import euclidean_cost
from repro.core.ese import StrategyEvaluator
from repro.core.objects import Dataset
from repro.core.plan import build_plan
from repro.core.queries import QuerySet
from repro.core.solvers import get_solver
from repro.core.sharding import build_index
from repro.core.strategy import StrategySpace
from repro.core.subdomain import _TIE_TOL, SubdomainIndex
from repro.data.synthetic import generate
from repro.data.workloads import generate_queries
from repro.errors import ReproError
from repro.index.mmapio import read_mmap_index
from repro.native import get_kernel, native_available, resolve_backend
from repro.parallel import IQRequest, PersistentPool, run_batch, serve_stream

__all__ = [
    "bench_fig4_partition",
    "bench_fig5_partition",
    "bench_fig7_candidates",
    "bench_par_index",
    "bench_par_batch",
    "bench_serve",
    "bench_persist",
    "bench_shard_build",
    "bench_shard_update",
    "bench_native",
    "bench_mmap_load",
    "bench_analyze",
    "check_regression",
    "run_regression",
    "main",
]

#: Default pool size for the parallel bench figures.
DEFAULT_BENCH_WORKERS = 4

#: Default shard count for the sharded-index figures.
DEFAULT_BENCH_SHARDS = 4

#: A figure "regresses" when its median speedup falls below this
#: fraction of the baseline's — generous, because the harness times
#: sub-second stages on shared CI machines.
CHECK_MIN_RATIO = 0.5

#: Absolute median-speedup floors enforced by ``--check`` on top of the
#: relative ratio: the persistent-pool figures must beat serial outright
#: (the whole point of the redeemed driver), so a future slide back
#: under 1x fails CI even if the baseline also slid.  Only enforced on
#: multi-core hosts (the payload records ``cpus``) and at non-smoke
#: scales: with one core a process pool cannot beat the serial loop,
#: and at tiny scale fork/IPC overhead legitimately dominates the
#: micro-batches, whatever the driver does.
CHECK_ABSOLUTE_FLOORS = {"par_batch": 1.0, "serve": 1.0}

#: Scales too small for the absolute pooled floors to be meaningful.
CHECK_FLOOR_EXEMPT_SCALES = frozenset({"tiny"})

#: Absolute floors enforced on *any* host, single-core included: these
#: figures' advantage is work avoidance (maintain one touched shard
#: instead of rebuilding all K; open mmap headers instead of
#: decompressing every matrix), not parallelism, so a slide under 1x
#: is a real regression everywhere.  Tiny scale stays exempt — there
#: both sides are sub-millisecond timer noise.
CHECK_SINGLE_CORE_FLOORS = {"shard_update": 1.0, "mmap_load": 1.0}

#: Absolute floor for the ``analyze_overhead`` figure, enforced on any
#: host at non-smoke scales: the figure's speedup is plain/analyzed
#: seconds, so 0.5 means an ``EXPLAIN ANALYZE`` run may cost at most
#: twice its plain twin.  The observation layer is a no-op-guarded
#: global read on the hot path; doubling a query's cost would mean the
#: instrumentation escaped that design.
CHECK_ANALYZE_FLOORS = {"analyze_overhead": 0.5}

#: Absolute floor for the ``native`` kernel figure, enforced only when
#: the payload records ``numba: true``: with the jit compiled, every
#: kernel must at least match its numpy twin.  Without numba the figure
#: times python against python and documents the graceful fallback
#: (speedup ~1x by construction, no floor to enforce).
CHECK_NATIVE_FLOORS = {"native": 1.0}


class RegressionMismatch(AssertionError):
    """Literal and vectorized paths disagreed — the harness is void."""


def _make_inputs(n: int, m: int, config: BenchConfig) -> tuple[Dataset, QuerySet]:
    dataset = Dataset(generate("IN", n, config.dimensions, seed=config.seed))
    queries = generate_queries(
        "UN", m, config.dimensions, seed=config.seed + 1, k_range=config.k_range
    )
    return dataset, queries


def _partition_fingerprint(index: SubdomainIndex) -> list[tuple[bytes, tuple[int, ...]]]:
    return sorted(
        (sub.signature, tuple(int(q) for q in np.sort(sub.query_ids)))
        for sub in index.subdomains
    )


def _timed_builds(
    dataset: Dataset, queries: QuerySet, config: BenchConfig
) -> tuple[float, float]:
    """(literal_seconds, vectorized_seconds) for identical index builds."""
    literal, literal_seconds = time_call(
        SubdomainIndex,
        dataset,
        queries,
        mode=config.index_mode,
        partition_method="literal",
    )
    vectorized, vectorized_seconds = time_call(
        SubdomainIndex,
        dataset,
        queries,
        mode=config.index_mode,
        partition_method="vectorized",
    )
    if _partition_fingerprint(literal) != _partition_fingerprint(vectorized):
        raise RegressionMismatch(
            f"literal and vectorized partitions differ (n={dataset.n}, m={queries.m})"
        )
    return literal_seconds, vectorized_seconds


def bench_fig4_partition(config: BenchConfig, points: int | None = None) -> list[BenchRecord]:
    """Figure 4 configuration: index build sweeping |D|."""
    records = []
    sweep = config.object_sweep[:points] if points else config.object_sweep
    for n in sweep:
        dataset, queries = _make_inputs(n, config.num_queries, config)
        literal_seconds, vectorized_seconds = _timed_builds(dataset, queries, config)
        records.append(
            BenchRecord(
                figure="fig4",
                case=f"|D|={n}",
                config={
                    "num_objects": n,
                    "num_queries": config.num_queries,
                    "dimensions": config.dimensions,
                    "index_mode": config.index_mode,
                    "seed": config.seed,
                },
                literal_seconds=literal_seconds,
                vectorized_seconds=vectorized_seconds,
            )
        )
    return records


def bench_fig5_partition(config: BenchConfig, points: int | None = None) -> list[BenchRecord]:
    """Figure 5 configuration: index build sweeping |Q|."""
    records = []
    sweep = config.query_sweep[:points] if points else config.query_sweep
    for m in sweep:
        dataset, queries = _make_inputs(config.num_objects, m, config)
        literal_seconds, vectorized_seconds = _timed_builds(dataset, queries, config)
        records.append(
            BenchRecord(
                figure="fig5",
                case=f"|Q|={m}",
                config={
                    "num_objects": config.num_objects,
                    "num_queries": m,
                    "dimensions": config.dimensions,
                    "index_mode": config.index_mode,
                    "seed": config.seed,
                },
                literal_seconds=literal_seconds,
                vectorized_seconds=vectorized_seconds,
            )
        )
    return records


def bench_fig7_candidates(config: BenchConfig, targets: int | None = None) -> list[BenchRecord]:
    """Figure 7 configuration: candidate generation, loop vs batch."""
    dataset, queries = _make_inputs(config.num_objects, config.num_queries, config)
    index = SubdomainIndex(dataset, queries, mode=config.index_mode)  # repro: noqa[RPR012] (bench times raw construction)
    evaluator = StrategyEvaluator(index)
    cost = euclidean_cost(config.dimensions)
    space = StrategySpace.unconstrained(config.dimensions)
    rng = np.random.default_rng(config.seed + 7)
    count = targets if targets else config.iq_repeats
    picks = rng.choice(dataset.n, size=min(dataset.n, count), replace=False)

    tau = min(config.tau, queries.m)
    solver = get_solver("efficient")
    records = []
    for target in sorted(int(t) for t in picks):
        # The measured stage is candidate generation inside this planned
        # Min-Cost IQ call; the plan is recorded alongside the timing.
        plan = build_plan(index, solver, "min_cost", target, tau, cost, space)
        state = SearchState(
            target=target,
            base=index.dataset.matrix[target].copy(),
            applied=np.zeros(config.dimensions),
            spent=0.0,
            mask=evaluator.hits_mask(target),
        )
        loop_batch, loop_seconds = time_call(
            generate_candidates, evaluator, state, cost, space, method="loop"
        )
        auto_batch, auto_seconds = time_call(
            generate_candidates, evaluator, state, cost, space, method="auto"
        )
        if not (
            np.array_equal(loop_batch.query_ids, auto_batch.query_ids)
            and np.allclose(loop_batch.vectors, auto_batch.vectors, atol=ATOL_PARITY)
            and np.allclose(loop_batch.costs, auto_batch.costs, atol=ATOL_PARITY)
        ):
            raise RegressionMismatch(
                f"loop and batch candidate generation differ (target={target})"
            )
        records.append(
            BenchRecord(
                figure="fig7",
                case=f"target={target}",
                config={
                    "num_objects": config.num_objects,
                    "num_queries": config.num_queries,
                    "dimensions": config.dimensions,
                    "index_mode": config.index_mode,
                    "candidates": int(loop_batch.size),
                    "seed": config.seed,
                },
                literal_seconds=loop_seconds,
                vectorized_seconds=auto_seconds,
                plan=plan.to_dict(),
            )
        )
    return records


def bench_par_index(
    config: BenchConfig,
    workers: int = DEFAULT_BENCH_WORKERS,
    shards: int = DEFAULT_BENCH_SHARDS,
) -> list[BenchRecord]:
    """Parallel index construction: serial vs worker pool (fig7 config).

    Runs in ``mode="exact"`` — the configuration where construction is
    the cost center (the relevant-mode hyperplane budget is too small to
    parallelize meaningfully).  One record per benched worker count,
    each sharing the single serial reference timing; the worker count is
    embedded in the record's plan metadata (``plan["workers"]``).  A
    final ``shards=K`` case builds the *sharded* index serially vs
    through the worker pool (one process group per shard) and requires
    per-shard bit-identical partitions.
    """
    dataset, queries = _make_inputs(config.num_objects, config.num_queries, config)
    serial, serial_seconds = time_call(SubdomainIndex, dataset, queries, mode="exact")
    reference = _partition_fingerprint(serial)
    cost = euclidean_cost(config.dimensions)
    space = StrategySpace.unconstrained(config.dimensions)
    tau = min(config.tau, queries.m)
    solver = get_solver("efficient")
    records = []
    for count in sorted({2, workers}):
        parallel, parallel_seconds = time_call(
            SubdomainIndex, dataset, queries, mode="exact", workers=count
        )
        if _partition_fingerprint(parallel) != reference:
            raise RegressionMismatch(
                f"serial and parallel (workers={count}) partitions differ"
            )
        plan = build_plan(parallel, solver, "min_cost", 0, tau, cost, space)
        resolved = parallel.workers
        del parallel  # keep the parent heap small before the next fork
        records.append(
            BenchRecord(
                figure="par_index",
                case=f"workers={count}",
                config={
                    "num_objects": config.num_objects,
                    "num_queries": config.num_queries,
                    "dimensions": config.dimensions,
                    "index_mode": "exact",
                    "workers": count,
                    "resolved_workers": resolved,
                    "seed": config.seed,
                },
                literal_seconds=serial_seconds,
                vectorized_seconds=parallel_seconds,
                plan=plan.to_dict(),
            )
        )
    sharded_serial, sharded_serial_seconds = time_call(
        build_index, dataset, queries, mode="exact", shards=shards, workers=0
    )
    sharded_parallel, sharded_parallel_seconds = time_call(
        build_index, dataset, queries, mode="exact", shards=shards, workers=workers
    )
    for s in range(shards):
        if _partition_fingerprint(sharded_serial.shard(s)) != _partition_fingerprint(
            sharded_parallel.shard(s)
        ):
            raise RegressionMismatch(
                f"serial and parallel sharded builds differ on shard {s}"
            )
    records.append(
        BenchRecord(
            figure="par_index",
            case=f"shards={shards},workers={workers}",
            config={
                "num_objects": config.num_objects,
                "num_queries": config.num_queries,
                "dimensions": config.dimensions,
                "index_mode": "exact",
                "shards": shards,
                "routing": sharded_parallel.routing,
                "workers": workers,
                "resolved_workers": sharded_parallel.workers,
                "seed": config.seed,
            },
            literal_seconds=sharded_serial_seconds,
            vectorized_seconds=sharded_parallel_seconds,
        )
    )
    return records


def bench_shard_build(
    config: BenchConfig, shards: int = DEFAULT_BENCH_SHARDS
) -> list[BenchRecord]:
    """Sharded build: monolithic vs K-shard partitioned construction.

    Same inputs, both serial; every probe target's Eq. 6 thresholds and
    hit mask must agree float-exactly (per-query quantities depend only
    on that query's weights and the full object set, so sharding the
    workload cannot change them).
    """
    dataset, queries = _make_inputs(config.num_objects, config.num_queries, config)
    mono, mono_seconds = time_call(
        SubdomainIndex, dataset, queries, mode=config.index_mode
    )
    sharded, sharded_seconds = time_call(
        build_index, dataset, queries, mode=config.index_mode, shards=shards, workers=0
    )
    for target in range(min(dataset.n, 16)):
        _, mono_theta = mono.kth_other(target)
        _, sharded_theta = sharded.kth_other(target)
        if not (
            np.array_equal(mono_theta, sharded_theta)
            and np.array_equal(mono.hits_mask(target), sharded.hits_mask(target))
        ):
            raise RegressionMismatch(
                f"monolithic and {shards}-shard builds disagree on target {target}"
            )
    return [
        BenchRecord(
            figure="shard_build",
            case=f"shards={shards}",
            config={
                "num_objects": config.num_objects,
                "num_queries": config.num_queries,
                "dimensions": config.dimensions,
                "index_mode": config.index_mode,
                "shards": shards,
                "routing": sharded.routing,
                "shard_sizes": list(sharded.shard_sizes),
                "seed": config.seed,
            },
            literal_seconds=mono_seconds,
            vectorized_seconds=sharded_seconds,
        )
    ]


def bench_shard_update(
    config: BenchConfig, shards: int = DEFAULT_BENCH_SHARDS
) -> list[BenchRecord]:
    """Incremental maintenance: touched-shard update vs full rebuild.

    Builds a K-shard index, routes three ``add_query`` inserts into
    their owning shards (``vectorized_seconds`` is the median single
    insert, so one noisy timer sample cannot swing the figure), and
    times a from-scratch sharded rebuild on the post-insert workload
    (``literal_seconds``).  Each update leaves K-1 shards untouched, so
    it must beat the rebuild outright even on a single core; the
    maintained and rebuilt indexes must agree on every probe target's
    thresholds and hit mask.
    """
    dataset, queries = _make_inputs(config.num_objects, config.num_queries, config)
    maintained = build_index(
        dataset, queries, mode=config.index_mode, shards=shards, workers=0
    )
    rng = np.random.default_rng(config.seed + 13)
    epochs_before = maintained.shard_epochs
    insert_seconds = []
    for _ in range(3):
        weights = rng.random(config.dimensions)
        _, seconds = time_call(maintained.add_query, weights, 2)
        insert_seconds.append(seconds)
    update_seconds = sorted(insert_seconds)[1]
    touched = sum(
        1 for before, after in zip(epochs_before, maintained.shard_epochs)
        if after != before
    )
    rebuilt, rebuild_seconds = time_call(
        build_index,
        dataset,
        maintained.queries,
        mode=config.index_mode,
        shards=shards,
        workers=0,
    )
    for target in range(min(dataset.n, 16)):
        _, maintained_theta = maintained.kth_other(target)
        _, rebuilt_theta = rebuilt.kth_other(target)
        if not (
            np.array_equal(maintained_theta, rebuilt_theta)
            and np.array_equal(
                maintained.hits_mask(target), rebuilt.hits_mask(target)
            )
        ):
            raise RegressionMismatch(
                f"updated and rebuilt sharded indexes disagree on target {target}"
            )
    return [
        BenchRecord(
            figure="shard_update",
            case=f"shards={shards}",
            config={
                "num_objects": config.num_objects,
                "num_queries": config.num_queries,
                "dimensions": config.dimensions,
                "index_mode": config.index_mode,
                "shards": shards,
                "routing": maintained.routing,
                "inserts": len(insert_seconds),
                "touched_shards": touched,
                "seed": config.seed,
            },
            literal_seconds=rebuild_seconds,
            vectorized_seconds=update_seconds,
        )
    ]


def _bench_workload(
    config: BenchConfig, requests: int | None
) -> "tuple[object, list[IQRequest], int]":
    """The shared serving workload: engine + fig7-shaped IQ batch.

    workers=0 pins the index build to the serial reference path, so the
    parallel figures measure the batch driver alone even when
    ``REPRO_WORKERS`` is set in the environment.
    """
    from repro.core.engine import ImprovementQueryEngine

    dataset, queries = _make_inputs(config.num_objects, config.num_queries, config)
    engine = ImprovementQueryEngine(dataset, queries, mode=config.index_mode, workers=0)
    rng = np.random.default_rng(config.seed + 7)
    count = requests if requests else 4 * config.iq_repeats
    pool = rng.choice(dataset.n, size=min(dataset.n, 8 * count), replace=False)
    pool = sorted(pool, key=lambda t: engine.hits(int(t)))
    targets = [int(t) for t in pool[:count]]
    tau = min(config.tau, queries.m)
    batch = [IQRequest("min_cost", t, float(tau)) for t in targets] + [
        IQRequest("max_hit", t, config.budget) for t in targets
    ]
    return engine, batch, tau


def bench_par_batch(
    config: BenchConfig,
    workers: int = DEFAULT_BENCH_WORKERS,
    requests: int | None = None,
) -> list[BenchRecord]:
    """Batch IQ driver: serial loop vs persistent worker pool.

    The fig7 IQ sweep shape: Min-Cost and Max-Hit calls over the
    least-hit targets, one batch per worker count.  Pool construction
    (fork + shm export) and one warm-up batch are *untimed* — that is
    the persistent pool's contract: startup amortizes across the many
    batches a serving process runs, so the figure measures the
    steady-state cost of one more batch.  Per-request results must
    agree with the serial reference on hits and cost.
    """
    engine, batch, tau = _bench_workload(config, requests)
    run_batch(engine, batch, workers=0)  # warm-up: prefixes + caches
    serial_results, serial_seconds = time_call(run_batch, engine, batch, workers=0)
    solver = get_solver("efficient")
    cost = euclidean_cost(config.dimensions)
    space = StrategySpace.unconstrained(config.dimensions)
    records = []
    for pool_size in sorted({2, workers}):
        with PersistentPool(engine, workers=pool_size) as worker_pool:
            worker_pool.run(batch)  # warm-up: per-worker evaluator state
            parallel_results, parallel_seconds = time_call(worker_pool.run, batch)
            resolved = worker_pool.workers
        for serial_result, parallel_result in zip(serial_results, parallel_results):
            if not (
                serial_result.hits_after == parallel_result.hits_after
                and np.isclose(
                    serial_result.total_cost,
                    parallel_result.total_cost,
                    atol=ATOL_PARITY,
                )
            ):
                raise RegressionMismatch(
                    f"serial and pooled batch results differ (workers={pool_size})"
                )
        plan = build_plan(
            engine.index, solver, "min_cost", batch[0].target, tau, cost, space
        )
        records.append(
            BenchRecord(
                figure="par_batch",
                case=f"workers={pool_size}",
                config={
                    "num_objects": config.num_objects,
                    "num_queries": config.num_queries,
                    "dimensions": config.dimensions,
                    "index_mode": config.index_mode,
                    "requests": len(batch),
                    "workers": pool_size,
                    "resolved_workers": resolved,
                    "driver": "persistent",
                    "seed": config.seed,
                },
                literal_seconds=serial_seconds,
                vectorized_seconds=parallel_seconds,
                plan=plan.to_dict(),
            )
        )
    return records


def bench_serve(
    config: BenchConfig,
    workers: int = DEFAULT_BENCH_WORKERS,
    requests: int | None = None,
) -> list[BenchRecord]:
    """Serving front end: one JSONL stream, serial vs pooled server.

    The same fig7-shaped workload as :func:`bench_par_batch`, expressed
    as protocol lines and pushed through :func:`serve_stream` — so the
    figure includes parsing, coalescing, and response serialization, not
    just solve time.  ``literal_seconds`` serves through a serial-mode
    pool (the reference), ``vectorized_seconds`` through a pre-warmed
    worker pool; both runs must emit byte-identical response lines.
    The record's config carries the pooled run's requests/second as
    ``throughput`` (the serving figure EXPERIMENTS.md quotes).
    """
    engine, batch, _ = _bench_workload(config, requests)
    lines = [
        json.dumps(
            {
                "id": i,
                "kind": request.kind,
                "target": request.target,
                "goal": request.goal,
            }
        )
        for i, request in enumerate(batch)
    ]
    records = []
    with PersistentPool(engine, workers=0) as serial_pool:
        serve_stream(engine, lines, io.StringIO(), pool=serial_pool)  # warm-up
        serial_out = io.StringIO()
        _, serial_seconds = time_call(
            serve_stream, engine, lines, serial_out, pool=serial_pool
        )
    for pool_size in sorted({2, workers}):
        with PersistentPool(engine, workers=pool_size) as worker_pool:
            serve_stream(engine, lines, io.StringIO(), pool=worker_pool)  # warm-up
            pooled_out = io.StringIO()
            stats, pooled_seconds = time_call(
                serve_stream, engine, lines, pooled_out, pool=worker_pool
            )
            resolved = worker_pool.workers
        if serial_out.getvalue() != pooled_out.getvalue():
            raise RegressionMismatch(
                f"serial and pooled serve responses differ (workers={pool_size})"
            )
        records.append(
            BenchRecord(
                figure="serve",
                case=f"workers={pool_size}",
                config={
                    "num_objects": config.num_objects,
                    "num_queries": config.num_queries,
                    "dimensions": config.dimensions,
                    "index_mode": config.index_mode,
                    "requests": len(lines),
                    "workers": pool_size,
                    "resolved_workers": resolved,
                    "throughput": stats.throughput,
                    "batches": stats.batches,
                    "seed": config.seed,
                },
                literal_seconds=serial_seconds,
                vectorized_seconds=pooled_seconds,
            )
        )
    return records


def bench_persist(config: BenchConfig) -> list[BenchRecord]:
    """Index persistence: fresh ``mode="exact"`` build vs npz reload.

    Saves the built index, reloads it against the same inputs, verifies
    the partitions and a probe object's hit count agree, and records
    build time vs load time (the amortization repeated runs get).
    """
    dataset, queries = _make_inputs(config.num_objects, config.num_queries, config)
    built, build_seconds = time_call(SubdomainIndex, dataset, queries, mode="exact")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench-index.npz"
        built.save(path)
        size_bytes = path.stat().st_size
        loaded, load_seconds = time_call(SubdomainIndex.load, path, dataset, queries)
    if _partition_fingerprint(built) != _partition_fingerprint(loaded):
        raise RegressionMismatch("persisted index restored a different partition")
    if built.hits(0) != loaded.hits(0):
        raise RegressionMismatch("persisted index answers differ from the built index")
    return [
        BenchRecord(
            figure="persist",
            case="build-vs-load",
            config={
                "num_objects": config.num_objects,
                "num_queries": config.num_queries,
                "dimensions": config.dimensions,
                "index_mode": "exact",
                "file_bytes": int(size_bytes),
                "seed": config.seed,
            },
            literal_seconds=build_seconds,
            vectorized_seconds=load_seconds,
        )
    ]


def bench_native(config: BenchConfig, kernel: str | None = None) -> list[BenchRecord]:
    """Hot-path kernels: pure-python (numpy) twin vs resolved backend.

    One record per registered kernel, timed on fig7-shaped inputs:
    Eq. 6 membership tests (``beats_batch``) over a candidate batch,
    arrangement classification (``signature_matrix``) over the
    workload x hyperplane products, and the ESE slab test
    (``slab_crossings``) over candidate x other-object score blocks.
    The two backends must agree bit-exactly on every output.

    With numba absent the "native" backend degrades to python, so the
    figure times python against python (~1x by construction) — the run
    still proves the fallback path executes.  With numba importable the
    jitted kernels carry the figure and ``--check`` holds their median
    speedup to :data:`CHECK_NATIVE_FLOORS` (the compile happens in an
    untimed warm-up call).
    """
    requested, resolved = resolve_backend(kernel)
    dataset, queries = _make_inputs(config.num_objects, config.num_queries, config)
    index = SubdomainIndex(dataset, queries, mode=config.index_mode)  # repro: noqa[RPR012] (bench drives kernels directly)
    rng = np.random.default_rng(config.seed + 23)
    repeats = max(3, config.iq_repeats)

    target = 0
    kth_ids, theta = index.kth_other(target)
    positions = rng.random((64, config.dimensions))
    scores = queries.weights @ positions.T  # (m, c)
    block = dataset.matrix[1 : 1 + 64]  # (b, d) other objects
    slab_theta = queries.weights @ block.T
    old_values = queries.weights @ (dataset.matrix[target] - block).T
    new_values = queries.weights @ (dataset.matrix[target] + 0.05 - block).T
    normals = index.normals if index.normals.size else rng.random((32, config.dimensions)) - 0.5
    products = queries.weights @ normals.T

    cases = {
        "beats_batch": (scores, theta, target, kth_ids, _TIE_TOL),
        "signature_matrix": (products, _TIE_TOL),
        "slab_crossings": (old_values, new_values, slab_theta, _TIE_TOL),
    }
    records = []
    for name, args in cases.items():
        python_kernel = get_kernel(name, "python")
        backend_kernel = get_kernel(name, resolved)
        backend_kernel(*args)  # untimed warm-up: jit compilation happens here
        python_out, python_seconds = time_call(
            lambda fn=python_kernel, a=args: [fn(*a) for _ in range(repeats)]
        )
        backend_out, backend_seconds = time_call(
            lambda fn=backend_kernel, a=args: [fn(*a) for _ in range(repeats)]
        )
        if not np.array_equal(np.asarray(python_out[-1]), np.asarray(backend_out[-1])):
            raise RegressionMismatch(
                f"kernel {name!r}: python and {resolved} backends disagree"
            )
        records.append(
            BenchRecord(
                figure="native",
                case=name,
                config={
                    "num_objects": config.num_objects,
                    "num_queries": config.num_queries,
                    "dimensions": config.dimensions,
                    "index_mode": config.index_mode,
                    "kernel": requested,
                    "resolved": resolved,
                    "numba": native_available(),
                    "repeats": repeats,
                    "seed": config.seed,
                },
                literal_seconds=python_seconds,
                vectorized_seconds=backend_seconds,
            )
        )
    return records


def bench_mmap_load(config: BenchConfig, points: int | None = None) -> list[BenchRecord]:
    """Index residency: ``.npz`` decompression vs mmap open, per size.

    For each benched |D| the same ``mode="exact"`` index is saved in
    both layouts and the *array-materialization* stage is timed: a full
    ``np.load`` + decompress of every ``.npz`` member (what the npz
    loader must pay before validation can even finish) vs
    :func:`~repro.index.mmapio.read_mmap_index` (manifest + ``.npy``
    header opens; pages fault in lazily).  Decompression grows with the
    index; the mmap open stays roughly flat — that contrast is the
    figure.  Both layouts must restore byte-identical arrays and a
    :meth:`SubdomainIndex.load` of each must serve identical answers.
    """
    sweep = config.object_sweep[:points] if points else config.object_sweep[:3]
    repeats = 3
    records = []
    for n in sweep:
        dataset, queries = _make_inputs(n, config.num_queries, config)
        built = SubdomainIndex(dataset, queries, mode="exact")  # repro: noqa[RPR012] (bench times persistence layouts)
        with tempfile.TemporaryDirectory() as tmp:
            npz_path = Path(tmp) / "bench-index.npz"
            mmap_path = Path(tmp) / "bench-index-mmap"
            built.save(npz_path)
            built.save(mmap_path, format="mmap")

            def npz_open(path=npz_path):
                with np.load(path) as payload:
                    return {key: np.array(payload[key]) for key in payload.files}

            npz_runs, npz_seconds = time_call(
                lambda: [npz_open() for _ in range(repeats)]
            )
            mmap_runs, mmap_seconds = time_call(
                lambda: [read_mmap_index(mmap_path) for _ in range(repeats)]
            )
            npz_arrays = npz_runs[-1]
            _, mmap_arrays = mmap_runs[-1]
            for key, mapped in mmap_arrays.items():
                if not np.array_equal(npz_arrays[key], np.asarray(mapped)):
                    raise RegressionMismatch(
                        f"npz and mmap layouts disagree on array {key!r} (|D|={n})"
                    )
            npz_loaded = SubdomainIndex.load(npz_path, dataset, queries)
            mmap_loaded = SubdomainIndex.load(mmap_path, dataset, queries)
            if _partition_fingerprint(npz_loaded) != _partition_fingerprint(mmap_loaded):
                raise RegressionMismatch(
                    f"npz and mmap loads restored different partitions (|D|={n})"
                )
            if npz_loaded.hits(0) != mmap_loaded.hits(0):
                raise RegressionMismatch(
                    f"npz and mmap loads answer differently (|D|={n})"
                )
            npz_bytes = npz_path.stat().st_size
            mmap_bytes = sum(f.stat().st_size for f in mmap_path.iterdir())
            del mmap_loaded, mmap_arrays, mmap_runs  # maps die before the files do
        records.append(
            BenchRecord(
                figure="mmap_load",
                case=f"|D|={n}",
                config={
                    "num_objects": n,
                    "num_queries": config.num_queries,
                    "dimensions": config.dimensions,
                    "index_mode": "exact",
                    "npz_bytes": int(npz_bytes),
                    "mmap_bytes": int(mmap_bytes),
                    "repeats": repeats,
                    "seed": config.seed,
                },
                literal_seconds=npz_seconds,
                vectorized_seconds=mmap_seconds,
            )
        )
    return records


def bench_analyze(config: BenchConfig, requests: int | None = None) -> list[BenchRecord]:
    """EXPLAIN ANALYZE overhead: plain engine calls vs analyzed calls.

    The fig7-shaped IQ sweep (Min-Cost and Max-Hit over the least-hit
    targets) executed twice: through the plain ``min_cost``/``max_hit``
    API (``literal_seconds``) and through ``engine.analyze``
    (``vectorized_seconds``) with the stage recorder active and the
    stats store recording every run.  Each request pair must return
    byte-identical strategies, hits, and costs — the differential that
    ``repro check --analyze`` also enforces — and every executed plan
    must actually carry observations (non-zero total wall-clock).
    """
    engine, batch, _ = _bench_workload(config, requests)

    def plain():
        return [
            engine.min_cost(r.target, int(r.goal))
            if r.kind == "min_cost"
            else engine.max_hit(r.target, r.goal)
            for r in batch
        ]

    def analyzed():
        return [
            engine.analyze(r.target, tau=int(r.goal))
            if r.kind == "min_cost"
            else engine.analyze(r.target, budget=r.goal)
            for r in batch
        ]

    plain()  # warm-up: evaluator prefixes + caches
    plain_results, plain_seconds = time_call(plain)
    analyzed_results, analyzed_seconds = time_call(analyzed)
    for request, plain_result, (analyzed_result, executed) in zip(
        batch, plain_results, analyzed_results
    ):
        if not (
            plain_result.hits_after == analyzed_result.hits_after
            and plain_result.total_cost == analyzed_result.total_cost
            and np.array_equal(
                plain_result.strategy.vector, analyzed_result.strategy.vector
            )
        ):
            raise RegressionMismatch(
                f"plain and analyzed results differ "
                f"({request.kind}, target={request.target})"
            )
        if executed.total_seconds <= 0.0:
            raise RegressionMismatch(
                f"analyzed run recorded no wall-clock "
                f"({request.kind}, target={request.target})"
            )
    return [
        BenchRecord(
            figure="analyze_overhead",
            case=f"requests={len(batch)}",
            config={
                "num_objects": config.num_objects,
                "num_queries": config.num_queries,
                "dimensions": config.dimensions,
                "index_mode": config.index_mode,
                "requests": len(batch),
                "seed": config.seed,
            },
            literal_seconds=plain_seconds,
            vectorized_seconds=analyzed_seconds,
        )
    ]


def check_regression(
    payload: dict, baseline: dict, min_ratio: float = CHECK_MIN_RATIO
) -> list[str]:
    """Compare a fresh run against a baseline BENCH_*.json payload.

    Returns a list of human-readable problems (empty = no regression):
    schema/scale mismatches make the comparison meaningless and are
    reported as problems; a figure regresses when its median speedup
    drops below ``min_ratio`` times the baseline's.  On multi-core
    hosts (``payload["cpus"] > 1``) at non-smoke scales the
    persistent-pool figures must additionally clear their
    :data:`CHECK_ABSOLUTE_FLOORS` outright — these floors do not scale
    with a degraded baseline.
    """
    problems: list[str] = []
    if baseline.get("schema") != BENCH_SCHEMA:
        return [f"baseline schema {baseline.get('schema')!r} != {BENCH_SCHEMA!r}"]
    if baseline.get("scale") != payload.get("scale"):
        return [
            f"scale mismatch: baseline ran at {baseline.get('scale')!r}, "
            f"this run at {payload.get('scale')!r} — not comparable"
        ]
    summary = payload.get("summary", {})
    for figure, base_stats in sorted(baseline.get("summary", {}).items()):
        stats = summary.get(figure)
        if stats is None:
            problems.append(f"{figure}: present in baseline but missing from this run")
            continue
        floor = min_ratio * float(base_stats["median_speedup"])
        median = float(stats["median_speedup"])
        if median < floor:
            problems.append(
                f"{figure}: median speedup {median:.2f}x fell below "
                f"{floor:.2f}x ({min_ratio:g} * baseline "
                f"{float(base_stats['median_speedup']):.2f}x)"
            )
    enforce_floors = (
        int(payload.get("cpus", 1)) > 1
        and payload.get("scale") not in CHECK_FLOOR_EXEMPT_SCALES
    )
    if enforce_floors:
        for figure, absolute_floor in sorted(CHECK_ABSOLUTE_FLOORS.items()):
            stats = summary.get(figure)
            if stats is None:
                continue
            median = float(stats["median_speedup"])
            if median < absolute_floor:
                problems.append(
                    f"{figure}: median speedup {median:.2f}x is below the "
                    f"absolute {absolute_floor:g}x floor — the pooled path "
                    "must beat serial on a multi-core host"
                )
    if payload.get("scale") not in CHECK_FLOOR_EXEMPT_SCALES:
        for figure, absolute_floor in sorted(CHECK_SINGLE_CORE_FLOORS.items()):
            stats = summary.get(figure)
            if stats is None:
                continue
            median = float(stats["median_speedup"])
            if median < absolute_floor:
                problems.append(
                    f"{figure}: median speedup {median:.2f}x is below the "
                    f"absolute {absolute_floor:g}x floor — this figure's win "
                    "is work avoidance, not parallelism, so it must hold "
                    "on any host"
                )
    if payload.get("scale") not in CHECK_FLOOR_EXEMPT_SCALES:
        for figure, absolute_floor in sorted(CHECK_ANALYZE_FLOORS.items()):
            stats = summary.get(figure)
            if stats is None:
                continue
            median = float(stats["median_speedup"])
            if median < absolute_floor:
                problems.append(
                    f"{figure}: median speedup {median:.2f}x is below the "
                    f"absolute {absolute_floor:g}x floor — EXPLAIN ANALYZE "
                    "must not cost more than double the plain run"
                )
    if payload.get("numba") and payload.get("scale") not in CHECK_FLOOR_EXEMPT_SCALES:
        for figure, absolute_floor in sorted(CHECK_NATIVE_FLOORS.items()):
            stats = summary.get(figure)
            if stats is None:
                continue
            median = float(stats["median_speedup"])
            if median < absolute_floor:
                problems.append(
                    f"{figure}: median speedup {median:.2f}x is below the "
                    f"absolute {absolute_floor:g}x floor — with numba "
                    "importable the jitted kernels must at least match "
                    "their numpy twins"
                )
    return problems


def run_regression(
    scale: str | None = None,
    smoke: bool = False,
    out: str | None = None,
    workers: int | None = None,
    shards: int | None = None,
    kernel: str | None = None,
) -> dict:
    """Run the full serial-vs-optimized harness; returns the payload.

    ``smoke`` forces the tiny scale and truncates each sweep to its
    first two points / two targets (fast enough for CI); ``out`` writes
    the JSON payload to the given path; ``workers`` sets the pool size
    benched by the parallel figures (default
    :data:`DEFAULT_BENCH_WORKERS`); ``shards`` the shard count benched
    by the sharded figures (default :data:`DEFAULT_BENCH_SHARDS`);
    ``kernel`` the backend the native-kernel figure resolves against
    (default: ``REPRO_KERNEL`` env var, else auto).
    """
    config = load_config("tiny" if smoke else scale)
    points = 2 if smoke else None
    pool_size = workers if workers else DEFAULT_BENCH_WORKERS
    shard_count = shards if shards else DEFAULT_BENCH_SHARDS
    records = []
    records += bench_fig4_partition(config, points=points)
    records += bench_fig5_partition(config, points=points)
    records += bench_fig7_candidates(config, targets=points)
    records += bench_par_index(config, workers=pool_size, shards=shard_count)
    records += bench_par_batch(
        config, workers=pool_size, requests=2 if smoke else None
    )
    records += bench_serve(
        config, workers=pool_size, requests=2 if smoke else None
    )
    records += bench_persist(config)
    records += bench_shard_build(config, shards=shard_count)
    records += bench_shard_update(config, shards=shard_count)
    records += bench_native(config, kernel=kernel)
    records += bench_mmap_load(config, points=points)
    records += bench_analyze(config, requests=2 if smoke else None)
    # The host's core count and numba availability travel with the
    # payload: --check only enforces the absolute pooled floors when
    # the run had real cores, and the native-kernel floor only when the
    # jit was actually importable.
    extra = {
        "cpus": os.cpu_count() or 1,
        "numba": native_available(),
        "kernel": resolve_backend(kernel)[1],
    }
    if out:
        return write_bench_json(records, out, scale=config.name, extra=extra)
    return {
        "schema": BENCH_SCHEMA,
        "scale": config.name,
        "summary": summarize_records(records),
        "records": [record.to_dict() for record in records],
        **extra,
    }


def main(argv=None) -> int:
    """``python -m repro.bench`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Literal-vs-vectorized benchmark-regression harness.",
    )
    parser.add_argument(
        "--scale",
        default=None,
        help="bench scale (tiny/bench/paper; default: $REPRO_BENCH_SCALE or bench)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny scale, truncated sweeps, parity checks only",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON payload to this path (e.g. BENCH_PR1.json)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "pool size benched by the parallel figures "
            f"(default {DEFAULT_BENCH_WORKERS})"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help=(
            "shard count benched by the sharded-index figures "
            f"(default {DEFAULT_BENCH_SHARDS})"
        ),
    )
    parser.add_argument(
        "--kernel",
        default=None,
        choices=["python", "native", "auto"],
        help="kernel backend the native-kernel figure resolves against "
             "(default: $REPRO_KERNEL or auto)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help=(
            "compare this run against a baseline BENCH_*.json; the run "
            "adopts the baseline's scale unless --scale is given; exit "
            "code 3 on regression"
        ),
    )
    args = parser.parse_args(argv)
    baseline = None
    scale = args.scale
    if args.check:
        try:
            with open(args.check, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.check}: {exc}", file=sys.stderr)
            return 1
        if scale is None and not args.smoke:
            scale = baseline.get("scale")
    try:
        payload = run_regression(
            scale=scale,
            smoke=args.smoke,
            out=args.out,
            workers=args.workers,
            shards=args.shards,
            kernel=args.kernel,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for figure, stats in payload["summary"].items():
        print(
            f"{figure}: {stats['points']} points, speedup "
            f"min {stats['min_speedup']:.2f}x / median {stats['median_speedup']:.2f}x / "
            f"max {stats['max_speedup']:.2f}x"
        )
    if args.out:
        print(f"wrote {args.out} [{payload['scale']} scale]")
    if baseline is not None:
        if int(payload.get("cpus", 1)) <= 1:
            print(
                "note: single-core host — absolute pooled-figure floors "
                f"({', '.join(sorted(CHECK_ABSOLUTE_FLOORS))}) not enforced"
            )
        problems = check_regression(payload, baseline)
        if problems:
            for problem in problems:
                print(f"regression vs {args.check}: {problem}", file=sys.stderr)
            return 3
        print(f"no regression vs {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
