"""Rank-aware companion queries from the paper's related work (§2).

The paper positions Improvement Queries against three existing
rank-aware queries; all three are implemented here so the library can
answer the full "how competitive is my object?" question family:

* **reverse top-k** [Vlachou et al.] — which workload queries contain
  the object in their result?  (already used throughout the engine;
  re-exported here for completeness);
* **reverse k-ranks** [Zhang et al., VLDB'14] — the ``k`` queries where
  the object ranks *best*, useful for unpopular objects that hit no
  top-k at all;
* **maximum rank query** [Mouratidis et al., VLDB'15] — the best rank
  the object can achieve under *any* linear utility in the domain, i.e.
  over all possible users rather than the indexed workload.  As the
  paper stresses, this explores utility space rather than changing the
  object — the complementary question to an IQ.

The maximum-rank search is exact: the rank of object ``p`` at query
point ``q`` is the number of objects ``l`` with ``q . (p_l - p) < 0``,
so minimizing rank means choosing sides of the ``n - 1`` hyperplanes
``q . (p_l - p) = 0`` to make as few as possible negative while the
side choice stays geometrically feasible — a branch-and-bound over
halfspace-feasibility checks (LP).  A sampling front end seeds the
incumbent so the exponential worst case rarely bites at library scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.objects import Dataset
from repro.core.queries import QuerySet
from repro.errors import ValidationError
from repro.geometry.halfspace import HalfspaceRegion
from repro.geometry.hyperplane import Hyperplane

__all__ = ["reverse_k_ranks", "max_rank", "MaxRankResult"]


def reverse_k_ranks(dataset: Dataset, queries: QuerySet, target: int, k: int) -> list[int]:
    """The ``k`` workload queries where ``target`` ranks best.

    Ties in rank are broken by query id (deterministic).  This is the
    reverse k-ranks query of [25]: useful when the object appears in no
    top-k result at all, because it still identifies the most promising
    users.
    """
    dataset._check_id(target)
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    if queries.dim != dataset.dim:
        raise ValidationError(f"query dim {queries.dim} != dataset dim {dataset.dim}")
    matrix = dataset.matrix
    weights = queries.weights
    scores = weights @ matrix.T  # (m, n)
    mine = scores[:, target][:, None]
    ids = np.arange(dataset.n)[None, :]
    better = (scores < mine).sum(axis=1)
    ties = ((scores == mine) & (ids < target)).sum(axis=1)
    ranks = better + ties + 1  # 1-based rank of the target per query
    order = np.lexsort((np.arange(queries.m), ranks))
    return [int(j) for j in order[: min(k, queries.m)]]


@dataclass(frozen=True)
class MaxRankResult:
    """Outcome of a maximum rank query."""

    rank: int  #: best achievable 1-based rank
    witness: np.ndarray  #: a query point achieving it
    exact: bool  #: False when the branch-and-bound hit its node budget


def max_rank(
    dataset: Dataset,
    target: int,
    domain_lower=None,
    domain_upper=None,
    samples: int = 256,
    node_budget: int = 20_000,
    seed: int | None = 0,
) -> MaxRankResult:
    """Best rank ``target`` can achieve under any linear utility [14].

    Parameters
    ----------
    domain_lower, domain_upper:
        The utility-weight domain box (defaults to ``[0, 1]^d``).
    samples:
        Random query points used to seed the incumbent.
    node_budget:
        Cap on branch-and-bound nodes; when exceeded the best incumbent
        is returned with ``exact=False``.

    Notes
    -----
    Query points lying *exactly on* an intersection hyperplane are
    scored conservatively (the tie counts as beaten), so "exact" means
    exact over the domain's generic points.  In particular the all-zero
    query — where every object ties and ranks collapse to id order — is
    not exploited; it encodes "no preference at all" and rank there is
    not meaningful.
    """
    dataset._check_id(target)
    matrix = dataset.matrix
    d = dataset.dim
    lower = np.zeros(d) if domain_lower is None else np.asarray(domain_lower, float)
    upper = np.ones(d) if domain_upper is None else np.asarray(domain_upper, float)

    others = [l for l in range(dataset.n) if l != target]
    # Hyperplanes q . (p_l - p_target) = 0; the target is *beaten* by l
    # at q iff q . (p_l - p_target) < 0 (l's score is smaller), which is
    # the "below" side under the library convention for the normal
    # p_l - p_target... beaten <=> side == -1 of Hyperplane(p_l - p).
    hyperplanes = []
    always_beaten = 0
    for l in others:
        normal = matrix[l] - matrix[target]
        h = Hyperplane(normal, a=l, b=target)
        if h.is_degenerate():
            # Identical objects: the tie falls to the lower id everywhere.
            always_beaten += int(l < target)
            continue
        hyperplanes.append(h)

    def rank_at(q: np.ndarray) -> int:
        scores = matrix @ q
        mine = scores[target]
        better = int(np.sum(scores < mine))
        ties = int(np.sum((scores == mine)[:target]))
        return better + ties + 1

    rng = np.random.default_rng(seed)
    best_point = lower + (upper - lower) * 0.5
    best_rank = rank_at(best_point)
    for __ in range(samples):
        q = lower + (upper - lower) * rng.random(d)
        r = rank_at(q)
        if r < best_rank:
            best_rank, best_point = r, q
        if best_rank == 1 + always_beaten:
            break

    # Branch and bound over side choices.  Order hyperplanes so the
    # "easy wins" (hyperplanes whose non-beaten side contains the
    # incumbent) come first.
    incumbent_sides = [h.side(best_point) for h in hyperplanes]
    order = np.argsort([0 if s == 1 else 1 for s in incumbent_sides], kind="stable")
    ordered = [hyperplanes[int(i)] for i in order]

    nodes = 0
    exact = True

    def search(pos: int, region: HalfspaceRegion, beaten: int) -> None:
        nonlocal best_rank, best_point, nodes, exact
        if nodes >= node_budget:
            exact = False
            return
        nodes += 1
        if beaten + 1 >= best_rank:
            return  # cannot improve the incumbent
        if pos == len(ordered):
            witness = region.witness()
            if witness is not None:
                achieved = rank_at(witness)  # exact at the witness point
                if achieved < best_rank:
                    best_rank, best_point = achieved, witness
            return
        h = ordered[pos]
        # side == -1 ('below', q . n > 0): l scores higher, target NOT
        # beaten.  side == +1 ('above', q . n <= 0): target beaten on
        # the open side; the boundary tie is counted as beaten too —
        # conservative by a measure-zero set (optima exactly on a
        # hyperplane with a favourable id tie may be missed).
        for side, add in ((-1, 0), (1, 1)):
            child = region.add(h, side)
            if not child.is_empty():
                search(pos + 1, child, beaten + add)

    base = HalfspaceRegion(d, lower=lower, upper=upper)
    search(0, base, always_beaten)
    return MaxRankResult(rank=best_rank, witness=np.asarray(best_point), exact=exact)
