"""Rank-aware companion queries: reverse k-ranks and maximum rank (§2)."""

from repro.rankaware.queries import MaxRankResult, max_rank, reverse_k_ranks

__all__ = ["reverse_k_ranks", "max_rank", "MaxRankResult"]
