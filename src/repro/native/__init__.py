"""Native hot-path kernels: registry, canonical numpy, optional numba.

Importing this package registers the pure-python kernels, attempts the
guarded numba twins, and pins the process-wide default backend from
``REPRO_KERNEL`` (``python`` | ``native`` | ``auto``, default auto).
The python path stays canonical: ``repro check`` differentials always
compare the native backend against it, and lint rule RPR013 keeps
compiled-backend imports confined to this package.
"""

from __future__ import annotations

from repro.native import jit as _jit  # registers compiled twins when available
from repro.native import kernels as _kernels  # registers the canonical kernels
from repro.native.registry import (
    KERNEL_BACKENDS,
    active_backend,
    get_kernel,
    kernel,
    native_available,
    native_kernel_names,
    python_kernel_names,
    register_kernel,
    register_native,
    resolve_backend,
    set_backend,
    use_backend,
)

__all__ = [
    "KERNEL_BACKENDS",
    "NUMBA_AVAILABLE",
    "active_backend",
    "get_kernel",
    "kernel",
    "native_available",
    "native_kernel_names",
    "python_kernel_names",
    "register_kernel",
    "register_native",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

NUMBA_AVAILABLE = _jit.NUMBA_AVAILABLE

del _jit, _kernels

# Honour REPRO_KERNEL for processes that never construct an engine
# (direct kernel imports, scripts); engines re-pin per execution.
set_backend(resolve_backend()[1])
