"""The kernel registry: pure-python canon, optional compiled twins.

Mirrors the solver registry (:mod:`repro.core.solvers`): implementations
register under a short kernel name, callers fetch them by name, and the
registry is the single source of truth for what exists.  Two backends
are kept per kernel:

* ``python`` — the canonical pure-numpy implementation registered with
  :func:`register_kernel`.  This path defines correctness: the
  differential harness (``repro check``) always compares against it,
  and every compiled twin must be float-exact against it.
* ``native`` — an optional compiled twin registered with
  :func:`register_native` (today: numba ``@njit`` kernels in
  :mod:`repro.native.jit`).  Registration *requires* the python twin to
  exist already, so a compiled kernel can never ship without its
  canonical reference — lint rule RPR013 enforces the same invariant
  statically.

Backend selection resolves ``explicit argument > REPRO_KERNEL
environment variable > "auto"``; ``auto`` means "native when available,
python otherwise", and a ``native`` request degrades gracefully to
python when no compiled backend imported (the resolved backend is
reported next to the requested one in ``ExecutionPlan``/EXPLAIN so the
degradation is visible, never silent).

The hot-path contract is :func:`kernel`: one dict lookup returning the
active backend's callable.  The active backend is process-global state
— engines pin their resolved backend around every execution with
:func:`use_backend`, which also makes pooled workers deterministic (the
engine object forked into each worker carries its resolved backend).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.errors import ValidationError

__all__ = [
    "KERNEL_BACKENDS",
    "register_kernel",
    "register_native",
    "python_kernel_names",
    "native_kernel_names",
    "native_available",
    "get_kernel",
    "kernel",
    "active_backend",
    "set_backend",
    "use_backend",
    "resolve_backend",
]

#: Accepted values for ``--kernel`` / ``REPRO_KERNEL``.
KERNEL_BACKENDS = ("python", "native", "auto")

KernelFunc = Callable[..., Any]

_PYTHON: dict[str, KernelFunc] = {}
_NATIVE: dict[str, KernelFunc] = {}

#: The resolved backend the next :func:`kernel` call dispatches to.
_BACKEND = "python"

#: ``name -> callable`` snapshot for the active backend (one dict lookup
#: on the hot path; rebuilt whenever the backend or registry changes).
_ACTIVE: dict[str, KernelFunc] = {}


def _rebuild_active() -> None:
    for name, func in _PYTHON.items():
        native = _NATIVE.get(name)
        _ACTIVE[name] = native if (_BACKEND == "native" and native is not None) else func


def register_kernel(name: str) -> Callable[[KernelFunc], KernelFunc]:
    """Register ``func`` as the canonical pure-python kernel ``name``."""

    def decorator(func: KernelFunc) -> KernelFunc:
        if name in _PYTHON:
            raise ValidationError(f"duplicate kernel name {name!r}")
        _PYTHON[name] = func
        _rebuild_active()
        return func

    return decorator


def register_native(name: str) -> Callable[[KernelFunc], KernelFunc]:
    """Register ``func`` as the compiled twin of python kernel ``name``.

    Refuses a twin whose canonical python kernel is not registered yet:
    the python path must exist first, because it is what ``repro
    check`` verifies the compiled path against.
    """

    def decorator(func: KernelFunc) -> KernelFunc:
        if name not in _PYTHON:
            raise ValidationError(
                f"native kernel {name!r} has no registered pure-python twin; "
                f"register the canonical implementation first"
            )
        if name in _NATIVE:
            raise ValidationError(f"duplicate native kernel {name!r}")
        _NATIVE[name] = func
        _rebuild_active()
        return func

    return decorator


def python_kernel_names() -> tuple[str, ...]:
    """Sorted names of every registered canonical kernel.

    Also the hook lint rule RPR013 imports to verify that every
    ``register_native(name)`` in the tree names a real python twin.
    """
    return tuple(sorted(_PYTHON))


def native_kernel_names() -> tuple[str, ...]:
    """Sorted names of every kernel with a compiled twin registered."""
    return tuple(sorted(_NATIVE))


def native_available() -> bool:
    """Did a compiled backend import and register at least one twin?"""
    return bool(_NATIVE)


def get_kernel(name: str, backend: str | None = None) -> KernelFunc:
    """Fetch one kernel implementation by name.

    ``backend=None`` returns the active backend's callable; ``"python"``
    and ``"native"`` force a specific one (``"native"`` falls back to
    the python twin per-kernel when no compiled twin registered).
    """
    python = _PYTHON.get(name)
    if python is None:
        raise ValidationError(
            f"unknown kernel {name!r}; registered kernels: {', '.join(python_kernel_names())}"
        )
    if backend is None:
        return _ACTIVE[name]
    if backend == "python":
        return python
    if backend == "native":
        return _NATIVE.get(name, python)
    raise ValidationError(f"unknown kernel backend {backend!r}; choose python or native")


def kernel(name: str) -> KernelFunc:
    """Hot-path dispatch: the active backend's callable for ``name``."""
    try:
        return _ACTIVE[name]
    except KeyError:
        raise ValidationError(
            f"unknown kernel {name!r}; registered kernels: {', '.join(python_kernel_names())}"
        ) from None


def active_backend() -> str:
    """The backend :func:`kernel` currently dispatches to."""
    return _BACKEND


def set_backend(backend: str) -> str:
    """Pin the active backend to a *resolved* value (python/native).

    ``auto`` is not accepted here — resolve it first with
    :func:`resolve_backend` so requested-vs-resolved stays explicit.
    """
    if backend not in ("python", "native"):
        raise ValidationError(
            f"kernel backend must be 'python' or 'native', got {backend!r} "
            f"(resolve 'auto' with resolve_backend first)"
        )
    global _BACKEND
    _BACKEND = backend
    _rebuild_active()
    return backend


@contextmanager
def use_backend(backend: str) -> Iterator[str]:
    """Temporarily pin the active backend, restoring the previous one."""
    previous = _BACKEND
    set_backend(backend)
    try:
        yield backend
    finally:
        set_backend(previous)


def resolve_backend(requested: str | None = None) -> tuple[str, str]:
    """Resolve a backend request to ``(requested, resolved)``.

    Resolution order: explicit ``requested`` argument, then the
    ``REPRO_KERNEL`` environment variable, then ``"auto"``.  ``auto``
    and an unavailable ``native`` both resolve to whatever actually
    runs, so the pair is exactly what EXPLAIN reports.
    """
    req = requested or os.environ.get("REPRO_KERNEL", "") or "auto"
    req = req.lower()
    if req not in KERNEL_BACKENDS:
        raise ValidationError(
            f"unknown kernel backend {req!r}; choose from {', '.join(KERNEL_BACKENDS)}"
        )
    if req == "python":
        return req, "python"
    return req, ("native" if native_available() else "python")
