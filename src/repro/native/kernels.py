"""Canonical pure-numpy implementations of the hot-path kernels.

These three loops dominate every profile of the engine (ROADMAP item
3): the Eq. 6 dominance test, the arrangement signature classification,
and the ESE affected-queries slab classification.  Each is registered
here as the ``python`` backend — the correctness reference the
differential harness compares against — and may have a numba twin in
:mod:`repro.native.jit` that must be float-exact against it.

Every kernel takes its tolerance as an explicit argument (bound by the
caller from :mod:`repro.constants`) so the compiled twins share the
exact same constants without importing anything at compile time.
"""

from __future__ import annotations

import numpy as np

from repro.native.registry import register_kernel

__all__ = ["beats_batch", "signature_matrix", "slab_crossings"]


# Hot-path kernels validate at the dispatch site, not per call: the
# compiled twins must share the exact same argument contract, and an
# asarray/guard inside the loop body would be timed by every benchmark.
@register_kernel("beats_batch")
def beats_batch(  # repro: noqa[RPR003]
    scores: np.ndarray,
    theta: np.ndarray,
    target: int,
    kth_ids: np.ndarray,
    tie_tol: float,
) -> np.ndarray:
    """Eq. 6 dominance over a ``(m, c)`` score block; see ``_beats_batch``.

    ``scores[i, j]`` is candidate ``j``'s score at query ``i``; the
    target enters query ``i``'s top-k when it beats ``theta[i]``
    strictly, ties within the relative band and wins the id tie-break
    (``target < kth_ids[i]``), or the threshold is infinite (fewer than
    k other objects — every position hits).
    """
    always = np.isinf(theta)
    finite_theta = np.where(always, 0.0, theta)
    band = tie_tol * np.maximum(1.0, np.abs(finite_theta))
    tie_ok = target < kth_ids
    strict = scores < (finite_theta - band)[:, None]
    tie = (np.abs(scores - finite_theta[:, None]) <= band[:, None]) & tie_ok[:, None]
    return always[:, None] | strict | tie


@register_kernel("signature_matrix")
def signature_matrix(values: np.ndarray, tol: float) -> np.ndarray:  # repro: noqa[RPR003]
    """Classify hyperplane offsets into int8 side signatures.

    ``values[i, j]`` is point ``i``'s signed offset against hyperplane
    ``j`` (the ``points @ normals.T`` product computed by the caller —
    both backends classify the *same* float64 products, which is what
    keeps the native twin float-exact).  ``<= tol`` is the paper's
    side-1 convention.
    """
    return np.where(values <= tol, np.int8(1), np.int8(-1))


@register_kernel("slab_crossings")
def slab_crossings(  # repro: noqa[RPR003]
    old_values: np.ndarray,
    new_values: np.ndarray,
    theta: np.ndarray,
    tie_tol: float,
) -> np.ndarray:
    """ESE slab scan: does a move cross either slab boundary (Eq. 4-5)?

    Elementwise over matching shapes: ``old_values``/``new_values`` are
    a query's signed offsets against the old/new intersection
    hyperplane of one other object, ``theta`` that other object's score
    at the query.  A query is affected when its tie-band region
    (-1 / 0 / +1, same relative band as :func:`beats_batch`) differs
    between the two hyperplanes — entering or leaving the band flips
    membership through the id tie-break even when no raw sign changes.
    """
    band = tie_tol * np.maximum(1.0, np.abs(theta))
    old_region = (old_values > band).astype(np.int8) - (old_values < -band).astype(np.int8)
    new_region = (new_values > band).astype(np.int8) - (new_values < -band).astype(np.int8)
    return old_region != new_region
