"""Optional numba-jitted twins of the canonical kernels.

This is the only module in the tree allowed to import a compiled
backend (lint rule RPR013).  The import is guarded: when numba is
absent the module degrades to a no-op and the registry keeps serving
the pure-python kernels — nothing else in the library may notice.

Every twin is a fused scalar loop over exactly the arithmetic the
python kernel performs, in the same order, so the results are
float-exact (bit-for-bit) against :mod:`repro.native.kernels`; the
``repro check --kernel native`` differential leg and the parity tests
hold that line.  ``cache=True`` persists the compiled artifacts next to
this file so a warm process pays compilation once per machine, not once
per run.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.native.registry import register_native

__all__ = ["NUMBA_AVAILABLE"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit  # type: ignore[import-not-found]  # repro: noqa[RPR013]

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - ImportError or a broken install
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    _jit: Callable[[Callable[..., Any]], Callable[..., Any]] = njit(cache=True)

    @register_native("beats_batch")
    @_jit
    def beats_batch(
        scores: np.ndarray,
        theta: np.ndarray,
        target: int,
        kth_ids: np.ndarray,
        tie_tol: float,
    ) -> np.ndarray:
        rows, cols = scores.shape
        out = np.empty((rows, cols), dtype=np.bool_)
        for i in range(rows):
            th = theta[i]
            if np.isinf(th):
                for j in range(cols):
                    out[i, j] = True
                continue
            band = tie_tol * max(1.0, abs(th))
            tie_ok = target < kth_ids[i]
            cut = th - band
            for j in range(cols):
                value = scores[i, j]
                out[i, j] = value < cut or (tie_ok and abs(value - th) <= band)
        return out

    @register_native("signature_matrix")
    @_jit
    def signature_matrix(values: np.ndarray, tol: float) -> np.ndarray:
        rows, cols = values.shape
        out = np.empty((rows, cols), dtype=np.int8)
        for i in range(rows):
            for j in range(cols):
                out[i, j] = 1 if values[i, j] <= tol else -1
        return out

    @register_native("slab_crossings")
    @_jit
    def slab_crossings(
        old_values: np.ndarray,
        new_values: np.ndarray,
        theta: np.ndarray,
        tie_tol: float,
    ) -> np.ndarray:
        flat_theta = theta.ravel()
        flat_old = old_values.ravel()
        flat_new = new_values.ravel()
        out = np.empty(flat_theta.shape[0], dtype=np.bool_)
        for i in range(flat_theta.shape[0]):
            band = tie_tol * max(1.0, abs(flat_theta[i]))
            old = flat_old[i]
            new = flat_new[i]
            old_region = (1 if old > band else 0) - (1 if old < -band else 0)
            new_region = (1 if new > band else 0) - (1 if new < -band else 0)
            out[i] = old_region != new_region
        return out.reshape(theta.shape)
