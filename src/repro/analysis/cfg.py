"""Per-function control-flow graphs for flow-sensitive lint rules.

RPR009 has to decide whether a shared-memory acquisition is released on
*every* control-flow path out of the acquiring function — a question a
regex or a flat AST walk cannot answer, because the sanctioned patterns
(``with`` blocks, ``try/finally`` reaching ``close()``) are exactly
about paths, not occurrences.

:func:`build_cfg` lowers one function body into a statement-level graph
with two edge kinds:

* **normal edges** — sequential flow, branch/loop structure, and the
  ``try``-body → ``finally`` threading (a try body's normal exit runs
  the ``finally`` before anything after the statement);
* **exception edges** — every statement may raise, conservatively, so
  each node gets an edge to the innermost enclosing handler entries and
  ``finally`` entry (or straight to :data:`EXIT` when unprotected).
  ``return`` and ``raise`` route through the innermost pending
  ``finally``.

Conservatism only ever *adds* paths, so a "some path escapes without
releasing" verdict can over-report (a stricter rule) but an "all paths
release" verdict is trustworthy for the patterns the project accepts:
acquisition immediately followed by ``try: ... finally: x.close()``.

``match`` statements and other exotic compounds are treated as opaque
single nodes; none appear in this codebase, and an opaque node keeps
the analysis conservative (its raise edge still reaches EXIT).
"""

from __future__ import annotations

import ast
from typing import Callable, Sequence

__all__ = ["EXIT", "ControlFlowGraph", "build_cfg"]

#: Sentinel node id for "control left the function".
EXIT = -1

_TRY_TYPES: tuple[type, ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # pragma: no branch - version dependent
    _TRY_TYPES = (ast.Try, getattr(ast, "TryStar"))


class ControlFlowGraph:
    """Statement-level CFG of one function body."""

    def __init__(self) -> None:
        self.statements: list[ast.stmt] = []
        self.normal: dict[int, set[int]] = {}
        self.raising: dict[int, set[int]] = {}
        self._node_of: dict[int, int] = {}

    def node_of(self, stmt: ast.stmt) -> int | None:
        """The node id of a statement, or None if it was not lowered."""
        return self._node_of.get(id(stmt))

    def can_escape(self, start: ast.stmt, releases: Callable[[ast.stmt], bool]) -> bool:
        """Does some path from ``start`` reach EXIT without a release node?

        The walk begins at ``start``'s *normal* successors — if the
        acquiring statement itself raises, nothing was acquired and
        there is nothing to release.
        """
        origin = self.node_of(start)
        if origin is None:
            return True  # not lowered: assume the worst
        stack = list(self.normal[origin])
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if node == EXIT:
                return True
            if node in seen:
                continue
            seen.add(node)
            if releases(self.statements[node]):
                continue
            stack.extend(self.normal[node])
            stack.extend(self.raising[node])
        return False


class _Builder:
    """Recursive lowering of statement lists into the graph."""

    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()

    def _new_node(self, stmt: ast.stmt, on_raise: frozenset[int]) -> int:
        cfg = self.cfg
        node = len(cfg.statements)
        cfg.statements.append(stmt)
        cfg.normal[node] = set()
        cfg.raising[node] = set(on_raise) if on_raise else {EXIT}
        cfg._node_of[id(stmt)] = node
        return node

    def _connect(self, sources: "set[int]", target: int) -> None:
        for source in sources:
            self.cfg.normal[source].add(target)

    def block(
        self,
        stmts: "Sequence[ast.stmt]",
        entry: "set[int]",
        on_raise: frozenset[int],
        finally_stack: "tuple[int, ...]",
        loop: "tuple[set[int], int] | None",
    ) -> "set[int]":
        """Lower a statement list; returns its normal-exit frontier.

        ``entry`` holds the predecessor nodes flowing in, ``on_raise``
        the targets an exception jumps to, ``finally_stack`` the pending
        ``finally`` entries a ``return``/``raise`` must traverse
        (innermost last), and ``loop`` is ``(break_sinks,
        continue_target)`` when inside a loop.

        An empty ``entry`` is *not* dead code: block entries reached
        through raise edges or node-id targets (function entry, handler
        bodies, ``finally`` bodies) have no normal predecessors yet.
        Statements after a ``return``/``raise`` are still lowered — they
        just receive no incoming edges, so escape walks never visit them.
        """
        frontier = set(entry)
        for stmt in stmts:
            frontier = self._statement(stmt, frontier, on_raise, finally_stack, loop)
        return frontier

    def _statement(
        self,
        stmt: ast.stmt,
        entry: "set[int]",
        on_raise: frozenset[int],
        finally_stack: "tuple[int, ...]",
        loop: "tuple[set[int], int] | None",
    ) -> "set[int]":
        node = self._new_node(stmt, on_raise)
        self._connect(entry, node)

        if isinstance(stmt, (ast.Return, ast.Raise)):
            target = finally_stack[-1] if finally_stack else EXIT
            self.cfg.normal[node].add(target)
            return set()
        if isinstance(stmt, ast.Break) and loop is not None:
            loop[0].add(node)
            return set()
        if isinstance(stmt, ast.Continue) and loop is not None:
            self.cfg.normal[node].add(loop[1])
            return set()
        if isinstance(stmt, ast.If):
            body = self.block(stmt.body, {node}, on_raise, finally_stack, loop)
            if stmt.orelse:
                orelse = self.block(stmt.orelse, {node}, on_raise, finally_stack, loop)
                return body | orelse
            return body | {node}
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            break_sinks: "set[int]" = set()
            body = self.block(
                stmt.body, {node}, on_raise, finally_stack, (break_sinks, node)
            )
            self._connect(body, node)  # loop back edge
            after: "set[int]" = {node}
            if stmt.orelse:
                after = self.block(stmt.orelse, {node}, on_raise, finally_stack, loop)
            return after | break_sinks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.block(stmt.body, {node}, on_raise, finally_stack, loop)
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, node, on_raise, finally_stack, loop)
        return {node}

    def _try(
        self,
        stmt: "ast.Try",
        node: int,
        on_raise: frozenset[int],
        finally_stack: "tuple[int, ...]",
        loop: "tuple[set[int], int] | None",
    ) -> "set[int]":
        # Lower the finally body first so its entry node id is known to
        # the try body and the handlers (their raise edges target it).
        fin_entry: int | None = None
        fin_frontier: "set[int]" = set()
        if stmt.finalbody:
            fin_entry = len(self.cfg.statements)
            fin_frontier = self.block(
                stmt.finalbody, set(), on_raise, finally_stack, loop
            )
            # The finally also re-propagates pending exceptions/returns.
            for target in on_raise or {EXIT}:
                self._connect(fin_frontier, target)

        handler_entries: "list[int]" = []
        handler_frontiers: "set[int]" = set()
        inner_raise = frozenset({fin_entry}) if fin_entry is not None else on_raise
        for handler in stmt.handlers:
            handler_entries.append(len(self.cfg.statements))
            handler_frontiers |= self.block(
                handler.body, set(), inner_raise, finally_stack, loop
            )

        body_raise = frozenset(handler_entries) | inner_raise
        body_stack = (
            finally_stack + (fin_entry,) if fin_entry is not None else finally_stack
        )
        body = self.block(stmt.body, {node}, body_raise, body_stack, loop)
        if stmt.orelse:
            body = self.block(stmt.orelse, body, inner_raise, body_stack, loop)

        if fin_entry is not None:
            self._connect(body | handler_frontiers, fin_entry)
            return set(fin_frontier)
        return body | handler_frontiers


def build_cfg(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> ControlFlowGraph:
    """Lower one function body into a :class:`ControlFlowGraph`."""
    builder = _Builder()
    frontier = builder.block(func.body, set(), frozenset({EXIT}), (), None)
    for source in frontier:
        builder.cfg.normal[source].add(EXIT)
    return builder.cfg
