"""Project-specific lint rules RPR001-RPR007 and RPR012-RPR014.

Each rule encodes a discipline the paper's correctness depends on; see
DESIGN.md ("Static analysis") for the full catalog with rationale.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from pathlib import Path
from typing import Iterator

from repro.constants import TOLERANCE_BAND
from repro.analysis.framework import FileContext, Finding, Rule, register_rule

__all__ = [
    "ToleranceLiteralRule",
    "RuntimeInvariantRule",
    "ArrayValidationRule",
    "MutableDefaultRule",
    "ParityCoverageRule",
    "SolverDispatchRule",
    "ParallelImportRule",
    "IndexFactoryRule",
    "NativeBackendRule",
    "TimingSourceRule",
    "PARITY_PAIRS",
]

#: Vectorized/literal implementation pairs (RPR005): defining one of
#: these symbols obliges some test file to exercise *both* variants.
PARITY_PAIRS: dict[str, tuple[str, str]] = {
    "find_subdomains": ("literal", "vectorized"),
    "SubdomainIndex": ("literal", "vectorized"),
    "generate_candidates": ("loop", "auto"),
    "min_cost_to_hit_l2_batch": ("loop", "auto"),
}


@register_rule
class ToleranceLiteralRule(Rule):
    """RPR001: float tolerances must be named constants in ``repro/constants.py``.

    Flags any float literal whose magnitude falls in
    :data:`repro.constants.TOLERANCE_BAND` outside the constants module.
    Scattered literal tolerances are exactly how side tests drift apart:
    ``1e-6`` in one module and ``1e-12`` in another silently disagree
    about which side of a hyperplane a boundary query is on.
    """

    code = "RPR001"
    title = "literal float tolerance outside repro/constants.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR001 findings: in-band float literals outside constants.py."""
        if ctx.path.name == "constants.py":
            return
        low, high = TOLERANCE_BAND
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, float):
                continue
            if low <= abs(value) <= high:
                yield ctx.finding(
                    node,
                    self,
                    f"literal tolerance {value!r}: use a named EPS_* constant "
                    f"from repro.constants",
                )


@register_rule
class RuntimeInvariantRule(Rule):
    """RPR002: runtime invariants must raise ``ReproError`` subclasses.

    ``assert`` statements are stripped under ``python -O``, and bare
    ``Exception`` defeats ``except ReproError`` error handling.  Flags
    every ``assert`` plus any ``raise`` of ``Exception`` /
    ``BaseException`` / ``AssertionError``.
    """

    code = "RPR002"
    title = "assert / bare Exception used for a runtime invariant"

    _FORBIDDEN = frozenset({"Exception", "BaseException", "AssertionError"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR002 findings: asserts and raises of non-Repro exceptions."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield ctx.finding(
                    node,
                    self,
                    "assert is stripped under python -O; raise a ReproError "
                    "subclass for runtime invariants",
                )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                name = target.id if isinstance(target, ast.Name) else None
                if name in self._FORBIDDEN:
                    yield ctx.finding(
                        node,
                        self,
                        f"raise {name}: library code must raise a ReproError subclass",
                    )


def _annotation_mentions_ndarray(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value
        if "Callable" in text:  # an ndarray-taking callable is not an ndarray
            return False
        return "ndarray" in text or "NDArray" in text
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else None
        )
        if head_name == "Callable":
            return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in ("ndarray", "NDArray"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in ("ndarray", "NDArray"):
            return True
    return False


#: Calls that count as "the function normalized/validated its input".
_VALIDATING_CALLS = frozenset(
    {
        "asarray",
        "ascontiguousarray",
        "asfarray",
        "atleast_1d",
        "atleast_2d",
        "atleast_3d",
        "array",
    }
)

_VALIDATING_PREFIXES = ("validate", "_validate", "check_", "_check")


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register_rule
class ArrayValidationRule(Rule):
    """RPR003: public array-taking functions must validate before indexing.

    A public function with an ``np.ndarray`` parameter must show
    evidence of input validation: a ``np.asarray``/``np.atleast_*``
    normalization, a reference to ``ValidationError``, a call to a
    ``validate*``/``_check*`` helper, or a call to a same-file function
    that does one of those (delegation is followed to a fixpoint).
    Unvalidated array parameters fail later with shape-dependent
    ``IndexError``/broadcast noise instead of a clear error.
    """

    code = "RPR003"
    title = "public ndarray parameter without shape/dtype validation"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR003 findings: unvalidated public ndarray parameters."""
        functions: list[ast.FunctionDef | ast.AsyncFunctionDef] = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        validated: set[str] = set()
        calls: dict[str, set[str]] = {}
        for func in functions:
            has_evidence, called = self._direct_evidence(func)
            if has_evidence:
                validated.add(func.name)
            calls[func.name] = called
        # Delegation fixpoint: calling a validated same-file function counts.
        changed = True
        while changed:
            changed = False
            for name, called in calls.items():
                if name not in validated and called & validated:
                    validated.add(name)
                    changed = True
        for func in self._public_functions(ctx.tree):
            if func.name in validated:
                continue
            params = list(func.args.posonlyargs) + list(func.args.args) + list(
                func.args.kwonlyargs
            )
            array_params = [a.arg for a in params if _annotation_mentions_ndarray(a.annotation)]
            if array_params:
                yield ctx.finding(
                    func,
                    self,
                    f"public function {func.name}() takes ndarray parameter(s) "
                    f"{', '.join(array_params)} without validating shape/dtype "
                    f"(np.asarray/atleast_* or a ValidationError guard)",
                )

    @staticmethod
    def _public_functions(
        tree: ast.Module,
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Module-level functions and methods of module-level classes.

        Nested closures are implementation details, not public API, and
        are excluded; their enclosing function is what gets checked.
        """
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield node
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for member in node.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and not member.name.startswith("_"):
                        yield member

    @staticmethod
    def _direct_evidence(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> tuple[bool, set[str]]:
        evidence = False
        called: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name is None:
                    continue
                called.add(name)
                if name in _VALIDATING_CALLS or name.startswith(_VALIDATING_PREFIXES):
                    evidence = True
            elif isinstance(node, ast.Name) and node.id == "ValidationError":
                evidence = True
            elif isinstance(node, ast.Attribute) and node.attr == "ValidationError":
                evidence = True
        return evidence, called


@register_rule
class MutableDefaultRule(Rule):
    """RPR004: no mutable default arguments.

    The classic footgun: a ``def f(x, cache={})`` default is shared
    across every call, so one caller's mutation leaks into the next.
    """

    code = "RPR004"
    title = "mutable default argument"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR004 findings: mutable default argument values."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        default,
                        self,
                        f"mutable default argument in {label}(); use None and "
                        f"create the container inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False


@lru_cache(maxsize=8)
def _test_corpus(tests_root: Path) -> tuple[tuple[str, str], ...]:
    """(path, text) for every test file under ``tests_root`` (cached)."""
    corpus: list[tuple[str, str]] = []
    for path in sorted(tests_root.rglob("*.py")):
        try:
            corpus.append((str(path), path.read_text(encoding="utf-8")))
        except OSError:  # pragma: no cover - unreadable test file
            continue
    return tuple(corpus)


def _find_tests_root(start: Path) -> Path | None:
    for parent in start.resolve().parents:
        candidate = parent / "tests"
        if candidate.is_dir():
            return candidate
    return None


@register_rule
class ParityCoverageRule(Rule):
    """RPR005: vectorized/literal pairs must both be exercised by a parity test.

    For every symbol in :data:`PARITY_PAIRS` defined in the linted file,
    some file under ``tests/`` must reference the symbol together with
    *both* variant names (e.g. ``"literal"`` and ``"vectorized"``).
    PR 1's fast paths shadow the paper-literal algorithms; without an
    enforced parity test the two implementations drift apart silently.
    """

    code = "RPR005"
    title = "vectorized/literal pair lacks a parity test"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR005 findings: parity symbols with no two-variant test."""
        defined = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and node.name in PARITY_PAIRS
        ]
        if not defined:
            return
        tests_root = self.config_tests_root(ctx)
        corpus = _test_corpus(tests_root) if tests_root is not None else ()
        for node in defined:
            variant_a, variant_b = PARITY_PAIRS[node.name]
            covered = any(
                node.name in text and variant_a in text and variant_b in text
                for __, text in corpus
            )
            if not covered:
                yield ctx.finding(
                    node,
                    self,
                    f"{node.name} dispatches between {variant_a!r} and "
                    f"{variant_b!r} but no test file references it with both "
                    f"variants; add a parity test",
                )

    @staticmethod
    def config_tests_root(ctx: FileContext) -> Path | None:
        """The tests directory to scan: configured, or nearest ``tests/`` above."""
        if ctx.config.tests_root is not None:
            return ctx.config.tests_root
        return _find_tests_root(ctx.path)


@register_rule
class SolverDispatchRule(Rule):
    """RPR006: solver functions are called only through the registry.

    The raw scheme implementations (``min_cost_iq``, ``greedy_*``,
    ``rta_*``, ...) are wrapped by registered solvers in
    ``repro/core/solvers.py``; every other module must dispatch through
    ``get_solver(name)`` so plans, EXPLAIN output, and ``method=``
    validation stay in sync with what actually runs.  The flagged name
    set is derived from each solver's ``wraps`` declaration — a newly
    registered solver extends the rule automatically.
    """

    code = "RPR006"
    title = "solver function called outside the registry"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR006 findings: direct solver-function calls."""
        if ctx.path.name == "solvers.py":
            return
        from repro.core.solvers import solver_function_names

        wrapped = solver_function_names()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in wrapped:
                yield ctx.finding(
                    node,
                    self,
                    f"direct call to solver function {name}(); dispatch "
                    f"through repro.core.solvers.get_solver(...) instead",
                )


@register_rule
class ParallelImportRule(Rule):
    """RPR007: process-pool primitives live only in ``repro/parallel/``.

    ``multiprocessing`` and ``concurrent.futures`` carry sharp edges —
    resource-tracker bookkeeping, start-method portability, pickling of
    module globals — that ``repro.parallel`` centralizes (shared-memory
    attach, worker-count resolution, fork-sharing an engine).  Any other
    module importing them directly bypasses those guards; it must go
    through the ``repro.parallel`` API instead.  Files whose path
    contains a ``parallel`` component are exempt.
    """

    code = "RPR007"
    title = "multiprocessing imported outside repro/parallel/"

    _FORBIDDEN_ROOTS = frozenset({"multiprocessing", "concurrent"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR007 findings: multiprocessing imports outside the layer."""
        if "parallel" in ctx.path.resolve().parts:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                names = [node.module]
            else:
                continue
            for name in names:
                if name.split(".")[0] in self._FORBIDDEN_ROOTS:
                    yield ctx.finding(
                        node,
                        self,
                        f"import of {name}: process-pool primitives are "
                        f"owned by repro.parallel; use its pool/batch API "
                        f"instead",
                    )


@register_rule
class IndexFactoryRule(Rule):
    """RPR012: indexes are constructed through the factory outside core.

    Since the index layer sharded, "build me an index" is a routing
    decision (:func:`repro.core.sharding.resolve_shards` picks the shard
    count, the router picks the layout); a direct
    ``SubdomainIndex(...)`` / ``ShardedSubdomainIndex(...)`` call in an
    outer layer hard-codes the monolithic (or one fixed) layout and
    silently bypasses ``--shards``/``--router``.  Outer layers go
    through :func:`repro.core.sharding.build_index` or the engine.
    ``core/`` (the implementations and the factory itself), ``check/``
    (differentials deliberately pin both layouts), and the tests are
    exempt; ``.load``/``.from_partition`` restores are not construction
    and are never flagged.
    """

    code = "RPR012"
    title = "direct index construction outside the factory layers"

    _INDEX_CLASSES = frozenset({"SubdomainIndex", "ShardedSubdomainIndex"})
    _EXEMPT_PARTS = frozenset({"core", "check", "tests"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR012 findings: direct index constructions in outer layers."""
        parts = ctx.path.resolve().parts
        if self._EXEMPT_PARTS & set(parts) or ctx.path.name.startswith("test_"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else None
            if name in self._INDEX_CLASSES:
                yield ctx.finding(
                    node,
                    self,
                    f"direct {name}(...) construction; build indexes through "
                    f"repro.core.sharding.build_index(...) (or the engine) so "
                    f"shard routing stays a single decision",
                )


@register_rule
class NativeBackendRule(Rule):
    """RPR013: compiled kernel backends live in ``repro/native`` with twins.

    The pure-python kernels are the executable reference; jitted
    backends are an *optional accelerator* behind the
    :mod:`repro.native` registry.  Three obligations keep that true:

    * compiled-backend imports (numba, llvmlite, cython, ...) are only
      legal in files whose path contains a ``native`` component — any
      other module must dispatch through ``repro.native.kernel(...)``
      so the import guard and fallback live in exactly one place;
    * inside the native layer, every jitted function (decorated with
      ``njit``/``jit``, directly or through an alias assigned from a
      jit call) must also be registered with ``register_native`` —
      an unregistered jitted kernel is unreachable by the backend
      switch and invisible to the parity harness;
    * every ``register_native("name")`` literal must name a kernel the
      python registry already knows (checked against the runtime
      :func:`repro.native.python_kernel_names`, RPR006-style), so a
      native backend can never exist without its python twin.
    """

    code = "RPR013"
    title = "compiled backend outside the native-registry discipline"

    _COMPILED_ROOTS = frozenset({"numba", "llvmlite", "cython", "pyximport", "cffi"})
    _JIT_NAMES = frozenset({"njit", "jit"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR013 findings: stray compiled imports, twin-less kernels."""
        parts = ctx.path.resolve().parts
        if "native" not in parts:
            yield from self._check_imports(ctx)
            return
        yield from self._check_jitted_defs(ctx)
        yield from self._check_twin_names(ctx)

    def _check_imports(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                names = [node.module]
            else:
                continue
            for name in names:
                if name.split(".")[0] in self._COMPILED_ROOTS:
                    yield ctx.finding(
                        node,
                        self,
                        f"import of {name}: compiled kernel backends are "
                        f"confined to repro/native/; dispatch through "
                        f"repro.native.kernel(...) instead",
                    )

    def _jit_aliases(self, ctx: FileContext) -> set[str]:
        """Names bound to a jit decorator factory, e.g. ``_jit = njit(...)``."""
        aliases: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                targets = [node.target.id]
                value = node.value
            else:
                continue
            if isinstance(value, ast.Call) and _call_name(value) in self._JIT_NAMES:
                aliases.update(targets)
        return aliases

    def _decorator_name(self, dec: ast.expr) -> str | None:
        if isinstance(dec, ast.Call):
            return _call_name(dec)
        if isinstance(dec, ast.Name):
            return dec.id
        if isinstance(dec, ast.Attribute):
            return dec.attr
        return None

    def _check_jitted_defs(self, ctx: FileContext) -> Iterator[Finding]:
        jit_markers = self._JIT_NAMES | self._jit_aliases(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            names = [self._decorator_name(dec) for dec in node.decorator_list]
            if not any(name in jit_markers for name in names):
                continue
            if "register_native" not in names:
                yield ctx.finding(
                    node,
                    self,
                    f"jitted function {node.name}() is not registered via "
                    f"register_native(...); an unregistered kernel is "
                    f"unreachable by the backend switch and skips the "
                    f"parity harness",
                )

    def _check_twin_names(self, ctx: FileContext) -> Iterator[Finding]:
        from repro.native import python_kernel_names

        known = python_kernel_names()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or _call_name(node) != "register_native":
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                continue
            if arg.value not in known:
                yield ctx.finding(
                    node,
                    self,
                    f"register_native({arg.value!r}) has no pure-python twin; "
                    f"register the canonical kernel with "
                    f"register_kernel({arg.value!r}) first",
                )


@register_rule
class TimingSourceRule(Rule):
    """RPR014: monotonic-clock reads are confined to ``repro/observe``.

    The RPR013 registry pattern applied to timing: ``repro.observe.clock``
    is the library's single wall-clock seam (``now``/``Stopwatch``/
    ``time_call``), and everything that measures time — the bench
    harness, the serving stats, the ``EXPLAIN ANALYZE`` recorder —
    imports it from there.  Flags any call to a monotonic/CPU clock
    (``time.perf_counter``, ``time.monotonic``, ``process_time``, their
    ``_ns`` variants, ``clock_gettime``) and any ``from time import``
    of one of those names in a file whose path has no ``observe``
    component.  One seam is what makes the "analyzed runs are
    byte-identical to plain runs" contract auditable: every timing side
    effect in the codebase is reachable from one module.
    """

    code = "RPR014"
    title = "monotonic-clock call outside repro/observe"

    _CLOCK_NAMES = frozenset(
        {
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
            "thread_time",
            "thread_time_ns",
            "clock_gettime",
            "clock_gettime_ns",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR014 findings: clock calls/imports outside the observe layer."""
        if "observe" in ctx.path.resolve().parts:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _call_name(node) in self._CLOCK_NAMES:
                yield ctx.finding(
                    node,
                    self,
                    f"{_call_name(node)}() read outside repro/observe; time "
                    f"through repro.observe.clock (now/Stopwatch/time_call) "
                    f"so every timing side effect stays behind one seam",
                )
            elif (
                isinstance(node, ast.ImportFrom)
                and node.level == 0
                and node.module == "time"
            ):
                for alias in node.names:
                    if alias.name in self._CLOCK_NAMES:
                        yield ctx.finding(
                            node,
                            self,
                            f"from time import {alias.name} outside "
                            f"repro/observe; import the clock from "
                            f"repro.observe.clock instead",
                        )
