"""The AST lint framework behind ``repro lint``.

A *rule* is a class with a ``code`` (``RPR001``, ...), a human ``title``,
a ``severity``, and a ``check`` method that walks one parsed file and
yields :class:`Finding` objects.  Rules register themselves with
:func:`register_rule`; the runner applies every registered rule (minus
``--select`` / ``--ignore`` filtering) to every target file.

Suppressions
------------
A finding is discarded when its physical source line carries a
``# repro: noqa`` comment::

    value = 1e-9          # repro: noqa            (suppress every rule)
    value = 1e-9          # repro: noqa[RPR001]    (suppress one rule)
    assert x; y = 1e-9    # repro: noqa[RPR001,RPR002]

Suppression is deliberately line-scoped — there is no file-level or
block-level escape hatch, so every accepted violation is visible next
to the code it excuses.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator

from repro.analysis.project import ProjectContext
from repro.errors import ValidationError

__all__ = [
    "Finding",
    "LintConfig",
    "FileContext",
    "Rule",
    "register_rule",
    "registered_rules",
    "lint_file",
    "lint_paths",
    "render_human",
    "render_json",
    "render_sarif",
]

#: ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR002]`` anywhere in a line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Z0-9,\s]*)\])?")

#: Sentinel rule-code set meaning "suppress everything on this line".
_ALL_RULES = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def format_human(self) -> str:
        """``path:line:col: CODE [severity] message`` for terminal output."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable representation of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class LintConfig:
    """Run-wide configuration shared by every rule.

    ``tests_root`` is where RPR005 looks for parity tests; when ``None``
    it is derived per-file by walking up from the linted file until a
    directory containing ``tests/`` is found.
    """

    select: frozenset[str] | None = None
    ignore: frozenset[str] = frozenset()
    tests_root: Path | None = None

    def rule_enabled(self, code: str) -> bool:
        """Should the rule with this code run under select/ignore filters?"""
        if code in self.ignore:
            return False
        return self.select is None or code in self.select


class FileContext:
    """One parsed source file plus its suppression map.

    ``project`` is the run-wide :class:`ProjectContext` when the file was
    linted as part of a multi-file run; single-file entry points get a
    context built from just that file, so project-scoped rules degrade
    to per-file behaviour instead of crashing.
    """

    def __init__(
        self,
        path: Path,
        source: str,
        config: LintConfig,
        project: ProjectContext | None = None,
    ) -> None:
        self.path = path
        self.source = source
        self.config = config
        self.project = project
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self._noqa: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            codes = match.group(1)
            if codes is None or not codes.strip():
                self._noqa[lineno] = _ALL_RULES
            else:
                self._noqa[lineno] = frozenset(
                    code.strip() for code in codes.split(",") if code.strip()
                )

    def suppressed(self, line: int, rule: str) -> bool:
        """Is ``rule`` silenced on ``line`` by a ``# repro: noqa`` comment?"""
        codes = self._noqa.get(line)
        return codes is not None and (codes is _ALL_RULES or "*" in codes or rule in codes)

    def finding(self, node: ast.AST, rule: "Rule", message: str) -> Finding:
        """Build a :class:`Finding` located at ``node`` for ``rule``."""
        return Finding(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.code,
            message=message,
            severity=rule.severity,
        )


class Rule:
    """Base class for lint rules; subclasses register via :func:`register_rule`."""

    code: str = "RPR000"
    title: str = "unnamed rule"
    severity: str = "error"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule found in ``ctx``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the global registry."""
    rule = cls()
    if rule.code in _REGISTRY:
        raise ValidationError(f"duplicate lint rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return cls


def registered_rules() -> list[Rule]:
    """All registered rules, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def _parse_file(path: Path, config: LintConfig) -> "FileContext | Finding":
    """Parse one file into a context, or a syntax-error finding."""
    source = path.read_text(encoding="utf-8")
    try:
        return FileContext(path, source, config)
    except SyntaxError as exc:
        return Finding(
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            rule="RPR000",
            message=f"syntax error: {exc.msg}",
        )


def _apply_rules(ctx: FileContext) -> list[Finding]:
    """Run every enabled rule over one parsed file, minus suppressions."""
    findings: list[Finding] = []
    for rule in registered_rules():
        if not ctx.config.rule_enabled(rule.code):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                findings.append(finding)
    return findings


def lint_file(path: Path, config: LintConfig) -> list[Finding]:
    """Apply every enabled rule to one file; syntax errors become findings.

    The project context covers only this file, so cross-file rules see a
    single-module project.
    """
    parsed = _parse_file(path, config)
    if isinstance(parsed, Finding):
        return [parsed]
    parsed.project = ProjectContext.build([parsed])
    return _apply_rules(parsed)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand directories to their ``.py`` members, sorted and deduplicated."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif not path.exists():
            raise ValidationError(f"lint target does not exist: {path}")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            raise ValidationError(f"lint target is not a Python file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(paths: Iterable[Path], config: LintConfig | None = None) -> tuple[list[Finding], int]:
    """Lint files/directories; returns (sorted findings, files checked).

    Runs in two passes: every target is parsed first so the project-wide
    :class:`ProjectContext` (symbol table, call graph, worker
    reachability) spans the whole run, then the rules are applied with
    that shared context attached to each file.
    """
    config = config or LintConfig()
    findings: list[Finding] = []
    contexts: list[FileContext] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        parsed = _parse_file(path, config)
        if isinstance(parsed, Finding):
            findings.append(parsed)
        else:
            contexts.append(parsed)
    project = ProjectContext.build(contexts)
    for ctx in contexts:
        ctx.project = project
        findings.extend(_apply_rules(ctx))
    return sorted(findings), checked


def render_human(findings: list[Finding], checked: int, out: IO[str]) -> None:
    """Print one ``path:line:col: CODE message`` row per finding plus a summary."""
    for finding in findings:
        print(finding.format_human(), file=out)
    noun = "file" if checked == 1 else "files"
    if findings:
        print(f"{len(findings)} finding(s) in {checked} {noun}", file=out)
    else:
        print(f"clean: {checked} {noun} checked", file=out)


def render_json(findings: list[Finding], checked: int, out: IO[str]) -> None:
    """Emit the findings, file count, and rule catalog as a JSON document."""
    payload = {
        "checked_files": checked,
        "findings": [finding.to_dict() for finding in findings],
        "rules": [
            {"code": rule.code, "title": rule.title, "severity": rule.severity}
            for rule in registered_rules()
        ],
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


#: SARIF reserves ``"error"``/``"warning"``/``"note"`` result levels.
_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def render_sarif(findings: list[Finding], checked: int, out: IO[str]) -> None:
    """Emit findings as a SARIF 2.1.0 log for code-scanning upload.

    ``checked`` is accepted for interface parity with the other
    renderers; SARIF has no standard slot for a file count, so it is
    recorded as a run property.
    """
    rules = [
        {
            "id": rule.code,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS.get(rule.severity, "warning")
            },
        }
        for rule in registered_rules()
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    payload = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "properties": {"checkedFiles": checked},
                "results": results,
            }
        ],
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")
