"""Cross-file analysis context for the project-wide lint rules.

The per-file rules (RPR001-007) see one ``ast.Module`` at a time; the
concurrency rules (RPR008-011) need to answer questions no single file
can: *which functions run inside worker processes?* (the pool
initializer lives in one module, the task function it reaches in
another), *is this module-level dict a sanctioned shared-array registry
or leaked mutable state?*, *does this call eventually block?*

:class:`ProjectContext` is that shared view.  It is built once per lint
run from every parsed file and provides:

* a **symbol table** — module-level functions and class methods of every
  linted file, keyed by ``(path, qualname)``, plus each module's import
  aliases so ``from repro.parallel.shm import attach_array`` resolves to
  the defining file when it is part of the run;
* a **lightweight call graph** — edges for ``f(...)``, ``self.m(...)``,
  and ``alias.f(...)`` call forms (attribute calls on arbitrary objects
  are unresolvable by design: this is a linter, not a type checker);
* **worker entry points** — functions handed to process pools as
  ``initializer=``, submitted via ``executor.submit(f, ...)`` /
  ``executor.map(f, ...)`` (receivers whose spelling mentions
  ``executor`` or ``pool``), or started as ``Process(target=f)`` — and
  the transitive closure of project functions reachable from them;
* **module-global classification** — which module-level names are
  mutable state (container literals, ``threading`` primitives,
  ``SharedMemory`` handles, or fork-shared rebinding slots declared
  ``global`` inside functions), and which of those are *sanctioned
  shared-array registries* (every value stored into them flows through
  ``attach_array``);
* a **may-block fixpoint** — given a seed set of blocking call names,
  which project functions can transitively reach one.

Everything here is deliberately conservative and syntactic: extra call
edges or extra "mutable" classifications only make the rules stricter,
and every accepted violation stays visible as a line-scoped noqa.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectContext"]

#: Call-receiver method names that hand a function to a process pool.
_POOL_DISPATCH_METHODS = frozenset(
    {"submit", "map", "starmap", "apply_async", "map_async", "imap", "imap_unordered"}
)

#: Constructor name tails that accept a worker ``initializer=`` /
#: ``target=`` function.
_POOL_CTOR_TAILS = frozenset({"ProcessPoolExecutor", "Pool", "Process"})

#: ``threading``/lock primitives whose module-level instances count as
#: mutable cross-thread state when reachable from worker code.
_LOCK_CTOR_TAILS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event", "Barrier"}
)

_CONTAINER_CTOR_NAMES = frozenset({"list", "dict", "set", "bytearray", "deque"})


class _ParsedFile(Protocol):
    """What :meth:`ProjectContext.build` needs from a parsed file."""

    path: Path
    tree: ast.Module


def _call_tail(node: ast.Call) -> str | None:
    """The last name component of a call's function expression."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted_name(path: Path) -> str:
    """Best-effort dotted module name: parts after a ``src`` component."""
    parts = list(path.resolve().parts)
    stem_parts = parts[:-1] + [path.stem]
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        module_parts = stem_parts[idx + 1 :]
    else:
        module_parts = [path.stem]
    if module_parts and module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    return ".".join(module_parts) if module_parts else path.stem


@dataclass
class FunctionInfo:
    """One project function (module-level def or class method)."""

    path: str  #: resolved source-file path (symbol-table key half)
    qualname: str  #: ``f`` or ``Class.f``
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    #: Raw call targets before resolution: ``("name", f)``, ``("self", m)``,
    #: or ``("module", alias, f)`` for ``alias.f(...)`` on an imported module.
    raw_calls: list[tuple[str, ...]] = field(default_factory=list)

    @property
    def key(self) -> tuple[str, str]:
        return (self.path, self.qualname)


@dataclass
class ModuleInfo:
    """One parsed module's project-relevant surface."""

    path: str
    dotted: str
    tree: ast.Module
    #: qualname -> FunctionInfo for defs in this module.
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: local name -> (module dotted name, original name) for from-imports.
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: local alias -> module dotted name for plain imports.
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: module-level mutable state: name -> kind
    #: ("container" | "lock" | "shm" | "rebinding slot").
    mutable_globals: dict[str, str] = field(default_factory=dict)
    #: mutable globals whose stored values all flow through attach_array.
    registry_globals: set[str] = field(default_factory=set)


class ProjectContext:
    """Cross-file symbol table + call graph over one lint run's files."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._by_dotted: dict[str, str] = {}
        self._by_tail: dict[str, list[str]] = {}
        self._edges: dict[tuple[str, str], set[tuple[str, str]]] = {}
        self._entry_points: set[tuple[str, str]] | None = None
        self._worker_reachable: set[tuple[str, str]] | None = None
        self._may_block: dict[frozenset[str], set[tuple[str, str]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: "Iterable[_ParsedFile]") -> "ProjectContext":
        """Build the context from every parsed file of the run."""
        project = cls()
        for parsed in files:
            project._add_module(parsed.path, parsed.tree)
        project._resolve_edges()
        return project

    def _add_module(self, path: Path, tree: ast.Module) -> None:
        resolved = str(path.resolve())
        info = ModuleInfo(path=resolved, dotted=_dotted_name(path), tree=tree)
        self.modules[resolved] = info
        self._by_dotted[info.dotted] = resolved
        self._by_tail.setdefault(info.dotted.rsplit(".", 1)[-1], []).append(resolved)
        self._collect_imports(info)
        self._collect_functions(info)
        self._collect_globals(info)

    @staticmethod
    def _collect_imports(info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    info.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    info.module_aliases[alias.asname or alias.name] = alias.name

    def _collect_functions(self, info: ModuleInfo) -> None:
        for node in info.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(info, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._register_function(info, member, class_name=node.name)

    def _register_function(
        self,
        info: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        qualname = f"{class_name}.{node.name}" if class_name else node.name
        fn = FunctionInfo(
            path=info.path, qualname=qualname, node=node, class_name=class_name
        )
        for call in (n for n in ast.walk(node) if isinstance(n, ast.Call)):
            func = call.func
            if isinstance(func, ast.Name):
                fn.raw_calls.append(("name", func.id))
            elif isinstance(func, ast.Attribute):
                value = func.value
                if isinstance(value, ast.Name) and value.id == "self":
                    fn.raw_calls.append(("self", func.attr))
                elif isinstance(value, ast.Name):
                    fn.raw_calls.append(("module", value.id, func.attr))
        info.functions[qualname] = fn

    def _collect_globals(self, info: ModuleInfo) -> None:
        """Classify module-level mutable state and shared-array registries."""
        module_level: set[str] = set()
        for node in info.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                module_level.add(target.id)
                kind = self._mutable_kind(value)
                if kind is not None:
                    info.mutable_globals[target.id] = kind
        # Fork-shared rebinding slots: module-level names reassigned
        # through a ``global`` statement inside some function.
        rebound: set[str] = set()
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Global):
                rebound.update(node.names)
        for name in rebound & module_level:
            info.mutable_globals.setdefault(name, "fork-shared rebinding slot")
        # Registry exemption: every subscript store into the global is an
        # ``attach_array(...)`` result — the sanctioned plumbing pattern.
        stores: dict[str, list[ast.expr]] = {}
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in info.mutable_globals
                ):
                    stores.setdefault(target.value.id, []).append(node.value)
        for name, values in stores.items():
            if values and all(
                isinstance(v, ast.Call) and _call_tail(v) == "attach_array"
                for v in values
            ):
                info.registry_globals.add(name)

    @staticmethod
    def _mutable_kind(value: ast.expr | None) -> str | None:
        if isinstance(value, (ast.List, ast.Dict, ast.Set)):
            return "container"
        if isinstance(value, ast.Call):
            tail = _call_tail(value)
            if tail in _CONTAINER_CTOR_NAMES or tail == "defaultdict":
                return "container"
            if tail in _LOCK_CTOR_TAILS:
                return "lock"
            if tail == "SharedMemory":
                return "shm"
        return None

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _module_by_dotted(self, dotted: str) -> ModuleInfo | None:
        path = self._by_dotted.get(dotted)
        if path is not None:
            return self.modules[path]
        # Fixture-friendly fallback: unique last-component match.
        candidates = self._by_tail.get(dotted.rsplit(".", 1)[-1], [])
        if len(candidates) == 1:
            return self.modules[candidates[0]]
        return None

    def resolve_name(self, info: ModuleInfo, name: str) -> FunctionInfo | None:
        """A plain-name reference: same module first, then from-imports."""
        fn = info.functions.get(name)
        if fn is not None:
            return fn
        imported = info.from_imports.get(name)
        if imported is not None:
            target = self._module_by_dotted(imported[0])
            if target is not None:
                return target.functions.get(imported[1])
        return None

    def _resolve_edges(self) -> None:
        for info in self.modules.values():
            for fn in info.functions.values():
                edges: set[tuple[str, str]] = set()
                for call in fn.raw_calls:
                    target: FunctionInfo | None = None
                    if call[0] == "name":
                        target = self.resolve_name(info, call[1])
                    elif call[0] == "self" and fn.class_name is not None:
                        target = info.functions.get(f"{fn.class_name}.{call[1]}")
                    elif call[0] == "module":
                        dotted = info.module_aliases.get(call[1])
                        if dotted is not None:
                            module = self._module_by_dotted(dotted)
                            if module is not None:
                                target = module.functions.get(call[2])
                    if target is not None:
                        edges.add(target.key)
                self._edges[fn.key] = edges

    def function(self, key: tuple[str, str]) -> FunctionInfo | None:
        """The function registered under ``(path, qualname)``, if any."""
        info = self.modules.get(key[0])
        return info.functions.get(key[1]) if info is not None else None

    def module_for(self, path: Path) -> ModuleInfo | None:
        """The :class:`ModuleInfo` of a linted file, or None if unparsed."""
        return self.modules.get(str(path.resolve()))

    # ------------------------------------------------------------------
    # Worker entry points and reachability
    # ------------------------------------------------------------------
    @staticmethod
    def _receiver_text(node: ast.Attribute) -> str:
        try:
            return ast.unparse(node.value).lower()
        except Exception:  # pragma: no cover - unparse of exotic nodes
            return ""

    def iter_entry_args(self, info: ModuleInfo) -> "Iterable[ast.expr]":
        """Expressions handed to pools as worker functions, per module."""
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node)
            if tail in _POOL_CTOR_TAILS:
                for keyword in node.keywords:
                    if keyword.arg in ("initializer", "target"):
                        yield keyword.value
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_DISPATCH_METHODS
                and node.args
            ):
                receiver = self._receiver_text(node.func)
                if "executor" in receiver or "pool" in receiver:
                    yield node.args[0]

    def entry_points(self) -> set[tuple[str, str]]:
        """Functions handed to process pools anywhere in the project."""
        if self._entry_points is None:
            entries: set[tuple[str, str]] = set()
            for info in self.modules.values():
                for arg in self.iter_entry_args(info):
                    if isinstance(arg, ast.Name):
                        fn = self.resolve_name(info, arg.id)
                        if fn is not None:
                            entries.add(fn.key)
            self._entry_points = entries
        return self._entry_points

    def worker_reachable(self) -> set[tuple[str, str]]:
        """Transitive closure of project functions reachable from workers."""
        if self._worker_reachable is None:
            seen: set[tuple[str, str]] = set()
            stack = list(self.entry_points())
            while stack:
                key = stack.pop()
                if key in seen:
                    continue
                seen.add(key)
                stack.extend(self._edges.get(key, ()))
            self._worker_reachable = seen
        return self._worker_reachable

    # ------------------------------------------------------------------
    # Blocking-call fixpoint
    # ------------------------------------------------------------------
    def may_block(self, blocking_names: frozenset[str]) -> set[tuple[str, str]]:
        """Project functions that can transitively reach a blocking call."""
        cached = self._may_block.get(blocking_names)
        if cached is not None:
            return cached
        blocked: set[tuple[str, str]] = set()
        for info in self.modules.values():
            for fn in info.functions.values():
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Call) and _call_tail(node) in blocking_names:
                        blocked.add(fn.key)
                        break
        changed = True
        while changed:
            changed = False
            for key, callees in self._edges.items():
                if key not in blocked and callees & blocked:
                    blocked.add(key)
                    changed = True
        self._may_block[blocking_names] = blocked
        return blocked

    # ------------------------------------------------------------------
    # Plumbing module detection
    # ------------------------------------------------------------------
    def plumbing_paths(self) -> set[str]:
        """Files defining ``attach_array`` — the sanctioned shm layer."""
        return {
            info.path
            for info in self.modules.values()
            if "attach_array" in info.functions
        }
