"""``repro lint`` — run the project lint rules from the command line.

Exit codes: 0 clean, 1 findings reported, 2 bad invocation (unknown
rule code, missing target).  Also runnable as ``python -m repro.analysis``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import IO

import repro.analysis.concurrency  # noqa: F401  (registers RPR008-RPR011)
import repro.analysis.rules  # noqa: F401  (registers RPR001-RPR007, RPR012-RPR014)
from repro.analysis.framework import (
    LintConfig,
    lint_paths,
    registered_rules,
    render_human,
    render_json,
    render_sarif,
)
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Project-specific static analysis (rules RPR001-RPR014).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["human", "json", "sarif"],
        default="human",
        help="output format",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--tests-root",
        default=None,
        metavar="DIR",
        help="tests directory for RPR005 parity lookups "
        "(default: nearest tests/ above each linted file)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _parse_codes(spec: str | None) -> frozenset[str] | None:
    if spec is None:
        return None
    return frozenset(code.strip().upper() for code in spec.split(",") if code.strip())


def main(argv: list[str] | None = None, out: IO[str] | None = None) -> int:
    """Run the lint rules over the requested paths; returns the exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in registered_rules():
            print(f"{rule.code} [{rule.severity}] {rule.title}", file=out)
        return 0

    known = {rule.code for rule in registered_rules()}
    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore) or frozenset()
    unknown = ((select or frozenset()) | ignore) - known
    if unknown:
        print(f"error: unknown rule code(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    config = LintConfig(
        select=select,
        ignore=ignore,
        tests_root=Path(args.tests_root) if args.tests_root else None,
    )
    try:
        findings, checked = lint_paths([Path(p) for p in args.paths], config)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        render_json(findings, checked, out)
    elif args.format == "sarif":
        render_sarif(findings, checked, out)
    else:
        render_human(findings, checked, out)
    return 1 if any(f.severity == "error" for f in findings) else 0
