"""Project-specific static analysis (``repro lint``).

A small AST lint framework plus the rules that keep this reproduction's
correctness disciplines machine-checked:

========  ==============================================================
RPR001    no literal float tolerances outside :mod:`repro.constants`
RPR002    runtime invariants raise :class:`~repro.errors.ReproError`
          subclasses, never ``assert`` / bare ``Exception``
RPR003    public ndarray-taking functions validate shape/dtype
RPR004    no mutable default arguments
RPR005    vectorized/literal implementation pairs are exercised by a
          parity test
RPR006    solver functions dispatch through the registry
RPR007    multiprocessing primitives live only in ``repro/parallel/``
RPR008    no module-level mutable state reachable from worker entry
          points (fork-safety; share via ``SharedArrayStore`` specs)
RPR009    every shared-memory acquisition is released on all
          control-flow paths (per-function CFG walk)
RPR010    index-owned array writes outside ``updates.py`` notify the
          epoch bus
RPR011    no blocking calls while holding a lock
          (``Condition.wait`` excepted)
RPR012    indexes are constructed through
          ``repro.core.sharding.build_index`` (or the engine) outside
          ``core/``, ``check/``, and the tests
RPR013    compiled kernel backends (numba, ...) import only inside
          ``repro/native/``; every jitted kernel is registered via
          ``register_native`` and names a pure-python twin
RPR014    monotonic-clock reads (``perf_counter``, ``monotonic``, ...)
          live only inside ``repro/observe/``; everything else times
          through ``repro.observe.clock``
========  ==============================================================

RPR001-007 and RPR012-014 are per-file AST passes; RPR008-011 additionally consume the
run-wide :class:`~repro.analysis.project.ProjectContext` (cross-file
symbol table, call graph, worker reachability) and per-function
:mod:`~repro.analysis.cfg` control-flow graphs built in
:func:`lint_paths`' first pass.

Run ``repro lint src/repro`` (or ``python -m repro.analysis``); suppress
a single line with ``# repro: noqa[RPR001]``.
"""

from __future__ import annotations

import repro.analysis.concurrency  # noqa: F401  (import registers RPR008-011)
import repro.analysis.rules  # noqa: F401  (import registers RPR001-007, RPR012-013)
from repro.analysis.cli import main
from repro.analysis.framework import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    lint_file,
    lint_paths,
    register_rule,
    registered_rules,
)
from repro.analysis.project import ProjectContext
from repro.analysis.rules import PARITY_PAIRS

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "PARITY_PAIRS",
    "ProjectContext",
    "Rule",
    "lint_file",
    "lint_paths",
    "main",
    "register_rule",
    "registered_rules",
]
