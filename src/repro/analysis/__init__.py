"""Project-specific static analysis (``repro lint``).

A small AST lint framework plus the rules that keep this reproduction's
correctness disciplines machine-checked:

========  ==============================================================
RPR001    no literal float tolerances outside :mod:`repro.constants`
RPR002    runtime invariants raise :class:`~repro.errors.ReproError`
          subclasses, never ``assert`` / bare ``Exception``
RPR003    public ndarray-taking functions validate shape/dtype
RPR004    no mutable default arguments
RPR005    vectorized/literal implementation pairs are exercised by a
          parity test
========  ==============================================================

Run ``repro lint src/repro`` (or ``python -m repro.analysis``); suppress
a single line with ``# repro: noqa[RPR001]``.
"""

from __future__ import annotations

import repro.analysis.rules  # noqa: F401  (import registers the rules)
from repro.analysis.cli import main
from repro.analysis.framework import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    lint_file,
    lint_paths,
    register_rule,
    registered_rules,
)
from repro.analysis.rules import PARITY_PAIRS

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "PARITY_PAIRS",
    "Rule",
    "lint_file",
    "lint_paths",
    "main",
    "register_rule",
    "registered_rules",
]
