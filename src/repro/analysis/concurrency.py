"""Project-wide concurrency and resource lint rules RPR008-RPR011.

Unlike RPR001-007, these rules consume the run-wide
:class:`~repro.analysis.project.ProjectContext` (cross-file symbol
table, call graph, worker reachability) and the per-function
:mod:`~repro.analysis.cfg` control-flow graphs, because the failure
modes they police are inherently cross-file and path-sensitive:

* **RPR008** — module-level mutable state (containers, lock primitives,
  ``SharedMemory`` handles, fork-shared rebinding slots) referenced from
  functions that run inside worker processes.  Fork-shared globals are
  invisible coupling between parent and child: the sanctioned channel
  is a :class:`~repro.parallel.shm.SharedArrayStore` spec attached via
  ``attach_array``.  Registries whose every store *is* an
  ``attach_array(...)`` result are exempt, as is the shm plumbing
  module itself; everything else needs a visible line-scoped noqa.
* **RPR009** — a ``SharedMemory(create=True)`` / ``SharedArrayStore()``
  acquisition bound to a local name must be released on every
  control-flow path: a ``with`` block, a ``close()``/``unlink()``/
  ``shutdown()`` reached on all paths (``try/finally``), or an
  ownership transfer (the handle passed into a call or stored into an
  attribute/subscript).  Checked with a per-function CFG walk, so an
  early ``return`` or an exception edge that skips the release is a
  finding even when a ``close()`` appears later in the text.
* **RPR010** — writes to index-owned arrays (``normals``,
  ``_external``, ``_weights``), ``.flat``/slice stores into them, and
  ``setattr``-rebinding outside ``updates.py`` (or the module defining
  ``SubdomainIndex``) must notify the epoch bus: a function doing such
  a write without calling ``notify_mutation`` serves stale state to
  every epoch-checking consumer.
* **RPR011** — no blocking calls (pool dispatch, pipe/file I/O,
  joins) while holding a lock or condition, transitively through the
  project call graph; ``Condition.wait``/``notify`` are the sanctioned
  exceptions.  Blocking under the server's admission lock stalls every
  producer on one slow consumer.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.cfg import build_cfg
from repro.analysis.framework import FileContext, Finding, Rule, register_rule
from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectContext

__all__ = [
    "ForkSafetyRule",
    "ShmLifecycleRule",
    "EpochDisciplineRule",
    "BlockingUnderLockRule",
]


def _call_tail(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _resolve_call(
    project: ProjectContext,
    info: ModuleInfo,
    fn: FunctionInfo,
    node: ast.Call,
) -> FunctionInfo | None:
    """Resolve a call site to a project function, mirroring the call graph."""
    func = node.func
    if isinstance(func, ast.Name):
        return project.resolve_name(info, func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "self" and fn.class_name is not None:
            return info.functions.get(f"{fn.class_name}.{func.attr}")
        dotted = info.module_aliases.get(func.value.id)
        if dotted is not None:
            module = project._module_by_dotted(dotted)
            if module is not None:
                return module.functions.get(func.attr)
    return None


@register_rule
class ForkSafetyRule(Rule):
    """RPR008: no module-level mutable state reachable from worker code.

    A fork-started worker inherits every module global by copy-on-write;
    mutating (or even relying on) that state couples parent and child
    invisibly — a spawn-started worker sees a fresh module instead, and
    a re-forked generation sees whatever the parent mutated since.
    State must travel as :class:`~repro.parallel.shm.ArraySpec`
    descriptors re-attached via ``attach_array``.  Globals used *as*
    attach registries (every store an ``attach_array(...)`` result) and
    the shm plumbing module itself are exempt; lambdas handed to a pool
    are flagged unconditionally (their closure is the same trap plus a
    pickling failure on spawn).
    """

    code = "RPR008"
    title = "module-level mutable state reachable from a worker entry point"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR008 findings: fork-shared mutable globals in worker code."""
        project = ctx.project
        if project is None:
            return
        info = project.module_for(ctx.path)
        if info is None or info.path in project.plumbing_paths():
            return
        for arg in project.iter_entry_args(info):
            if isinstance(arg, ast.Lambda):
                yield ctx.finding(
                    arg,
                    self,
                    "lambda handed to a worker pool: closures capture "
                    "parent state invisibly and cannot be pickled; pass a "
                    "module-level function taking ArraySpec descriptors",
                )
        flagged = {
            name: kind
            for name, kind in info.mutable_globals.items()
            if name not in info.registry_globals
        }
        if not flagged:
            return
        reachable = project.worker_reachable()
        for fn in info.functions.values():
            if fn.key not in reachable:
                continue
            # One finding per (function, global), at the earliest
            # reference, so a single visible noqa covers the function.
            first: "dict[str, ast.Name]" = {}
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Name) or node.id not in flagged:
                    continue
                best = first.get(node.id)
                position = (node.lineno, node.col_offset)
                if best is None or position < (best.lineno, best.col_offset):
                    first[node.id] = node
            for name in sorted(first):
                yield ctx.finding(
                    first[name],
                    self,
                    f"worker-reachable {fn.qualname}() touches module-level "
                    f"{flagged[name]} {name!r}; share state through "
                    f"SharedArrayStore specs and attach_array() instead",
                )


#: Method names that count as releasing a shared-memory handle.
_RELEASE_METHODS = frozenset({"close", "unlink", "shutdown"})


def _shm_acquisition(stmt: ast.stmt) -> "tuple[str | None, ast.Call] | None":
    """``(bound name, call)`` when ``stmt`` acquires a shm resource.

    Matches ``name = SharedArrayStore()``, ``name =
    SharedMemory(create=True)`` (any module spelling), and the bare-
    expression forms of either.  Attribute/subscript targets are an
    ownership transfer at birth and are not reported here.
    """
    name: str | None = None
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return None
        name, value = target.id, stmt.value
    elif isinstance(stmt, ast.Expr):
        value = stmt.value
    else:
        return None
    if not isinstance(value, ast.Call):
        return None
    tail = _call_tail(value)
    if tail == "SharedArrayStore":
        return name, value
    if tail == "SharedMemory":
        for keyword in value.keywords:
            if keyword.arg == "create" and isinstance(keyword.value, ast.Constant):
                if keyword.value.value:
                    return name, value
    return None


def _releases_name(stmt: ast.stmt, name: str) -> bool:
    """Does ``stmt`` release or transfer ownership of the handle ``name``?"""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == name
                and func.attr in _RELEASE_METHODS
            ):
                return True
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            if any(isinstance(a, ast.Name) and a.id == name for a in arguments):
                return True  # handed off: receiver owns the lifecycle now
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(node.value)
                ):
                    return True  # parked on an object/registry
    return False


@register_rule
class ShmLifecycleRule(Rule):
    """RPR009: shared-memory acquisitions must be released on all paths.

    Leaked ``/dev/shm`` segments survive the process; a ``close()``
    that an early return or an exception edge can skip is a leak the
    text of the function hides.  The per-function CFG (conservative
    raise edges on every statement) makes the skip visible.
    """

    code = "RPR009"
    title = "shared-memory acquisition not released on every path"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR009 findings: escaping shm acquisitions, per CFG walk."""
        scopes: "list[ast.Module | ast.FunctionDef | ast.AsyncFunctionDef]" = [ctx.tree]
        scopes.extend(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            cfg = build_cfg(scope)
            for stmt in cfg.statements:
                acquired = _shm_acquisition(stmt)
                if acquired is None:
                    continue
                name, call = acquired
                what = _call_tail(call) or "shared memory"
                if name is None:
                    yield ctx.finding(
                        call,
                        self,
                        f"{what} acquired and discarded: bind it and close "
                        f"it, or use a with-statement",
                    )
                    continue
                if cfg.can_escape(stmt, lambda s: _releases_name(s, name)):
                    yield ctx.finding(
                        call,
                        self,
                        f"{what} bound to {name!r} can escape this scope "
                        f"without close(): use a with-statement or a "
                        f"try/finally reaching {name}.close() on every path",
                    )


#: Index-owned array attributes whose rebinding/stores demand an epoch bump.
_INDEX_ARRAY_ATTRS = frozenset({"normals", "_external", "_weights"})

#: Substrings of a subscript-store base that mark a store-resident array.
_STORE_BASE_MARKS = ("._external", "._weights", ".normals", ".flat")


def _epoch_offense(node: ast.AST) -> "tuple[ast.AST, str] | None":
    """``(location, description)`` when ``node`` writes index-owned state."""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr in _INDEX_ARRAY_ATTRS:
                value = target.value
                if not (isinstance(value, ast.Name) and value.id == "self"):
                    return target, f"rebinding of index-owned array .{target.attr}"
            if isinstance(target, ast.Subscript):
                try:
                    base = ast.unparse(target.value)
                except Exception:  # pragma: no cover - exotic target
                    continue
                if base.startswith("self."):
                    continue
                if any(mark in base for mark in _STORE_BASE_MARKS):
                    return target, f"element store into {base}"
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "setattr":
            return node, "setattr() rebinding"
    return None


@register_rule
class EpochDisciplineRule(Rule):
    """RPR010: index-state writes outside updates.py must bump the epoch.

    Every consumer (evaluator caches, plans, the persistent pool's fork
    generations) trusts :attr:`SubdomainIndex.epoch` to move when the
    index does; a write that skips ``notify_mutation()`` makes all of
    them serve stale answers with no error anywhere.  ``updates.py``
    and the module defining ``SubdomainIndex`` own the discipline;
    ``self.*`` writes are the owning object managing its own state.
    """

    code = "RPR010"
    title = "index-owned array written without an epoch notification"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR010 findings: epoch-silent writes to index state."""
        if ctx.path.name == "updates.py":
            return
        if any(
            isinstance(node, ast.ClassDef) and node.name == "SubdomainIndex"
            for node in ctx.tree.body
        ):
            return
        functions = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        inside: set[int] = set()
        for func in functions:
            for node in ast.walk(func):
                if node is not func:
                    inside.add(id(node))
        for scope in functions:
            yield from self._check_scope(ctx, ast.walk(scope), scope.name)
        module_nodes = (n for n in ast.walk(ctx.tree) if id(n) not in inside)
        yield from self._check_scope(ctx, module_nodes, "<module>")

    def _check_scope(
        self, ctx: FileContext, nodes: "Iterator[ast.AST]", label: str
    ) -> Iterator[Finding]:
        offenses: "list[tuple[ast.AST, str]]" = []
        notified = False
        for node in nodes:
            if isinstance(node, ast.Call) and _call_tail(node) == "notify_mutation":
                notified = True
            offense = _epoch_offense(node)
            if offense is not None:
                offenses.append(offense)
        if notified:
            return
        for location, description in offenses:
            yield ctx.finding(
                location,
                self,
                f"{description} in {label} without notify_mutation(): "
                f"epoch-checking consumers will serve stale state; mutate "
                f"through repro.core.updates or notify the epoch bus",
            )


#: Call tails treated as blocking: pool dispatch, pipe/file I/O, joins.
_BLOCKING_CALLS = frozenset(
    {
        "run",
        "run_outcomes",
        "run_batch",
        "recv",
        "send",
        "read",
        "readline",
        "readlines",
        "write",
        "flush",
        "result",
        "join",
        "sleep",
        "acquire",
    }
)

#: Sanctioned condition-variable verbs (wait releases the lock; notify
#: is O(1)) plus lock housekeeping.
_LOCK_VERBS = frozenset({"wait", "wait_for", "notify", "notify_all", "release", "locked"})


def _lockish(expr: ast.expr) -> str | None:
    """The spelling of a with-item that looks like a lock acquisition."""
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - exotic context expr
        return None
    lowered = text.lower()
    if "lock" in lowered or "cond" in lowered:
        return text
    return None


@register_rule
class BlockingUnderLockRule(Rule):
    """RPR011: no blocking calls while holding a lock or condition.

    The server's admission lock serializes every producer; one pool
    dispatch or pipe write under it turns the bounded queue into a
    convoy.  ``Condition.wait`` is exempt (it releases the lock while
    blocked) — that is the one sanctioned way to block "under" a lock.
    The check is transitive through the project call graph, so hiding
    the I/O one helper deep still fires.
    """

    code = "RPR011"
    title = "blocking call while holding a lock"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield RPR011 findings: blocking calls inside lock-holding withs."""
        project = ctx.project
        if project is None:
            return
        info = project.module_for(ctx.path)
        if info is None:
            return
        blocked = project.may_block(_BLOCKING_CALLS)
        for fn in info.functions.values():
            for stmt in ast.walk(fn.node):
                if not isinstance(stmt, (ast.With, ast.AsyncWith)):
                    continue
                locks = [
                    text
                    for item in stmt.items
                    if (text := _lockish(item.context_expr)) is not None
                ]
                if not locks:
                    continue
                for body_stmt in stmt.body:
                    yield from self._check_body(
                        ctx, project, info, fn, body_stmt, locks
                    )

    def _check_body(
        self,
        ctx: FileContext,
        project: ProjectContext,
        info: ModuleInfo,
        fn: FunctionInfo,
        stmt: ast.stmt,
        locks: "list[str]",
    ) -> Iterator[Finding]:
        blocked = project.may_block(_BLOCKING_CALLS)
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node)
            if tail is None or tail in _LOCK_VERBS:
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                try:
                    receiver = ast.unparse(func.value)
                except Exception:  # pragma: no cover - exotic receiver
                    receiver = ""
                if receiver in locks:
                    continue  # housekeeping on the held lock itself
            if tail in _BLOCKING_CALLS:
                yield ctx.finding(
                    node,
                    self,
                    f"blocking call {tail}() while holding {locks[0]}: "
                    f"compute under the lock, perform I/O after release",
                )
                continue
            target = _resolve_call(project, info, fn, node)
            if target is not None and target.key in blocked:
                yield ctx.finding(
                    node,
                    self,
                    f"call to {target.qualname}() while holding {locks[0]}: "
                    f"it transitively reaches blocking I/O; move it outside "
                    f"the lock",
                )
