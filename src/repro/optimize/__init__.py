"""Optimization substrates: the simplex LP solver and hit-cost solvers."""

from repro.optimize.hit_cost import DEFAULT_MARGIN, HitSubproblem, min_cost_to_hit
from repro.optimize.simplex import LinprogResult, linprog

__all__ = ["linprog", "LinprogResult", "min_cost_to_hit", "HitSubproblem", "DEFAULT_MARGIN"]
