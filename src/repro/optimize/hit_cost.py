"""Cheapest strategy that makes the target hit one query (Eq. 13-14).

Every iteration of the greedy IQ searches (Algorithms 3 and 4) solves,
for each not-yet-hit query ``q``::

    minimize  Cost(s)   subject to   q . (p + s) < theta_q,
                                      s in StrategySpace box

where ``theta_q`` is the score of the k-th ranked *other* object at
``q`` (the threshold of Eq. 6).  Writing ``gap = theta_q - q . p``, the
constraint is ``q . s < gap``; the strict inequality is realized as
``q . s <= gap - margin``.

Solvers by cost type
--------------------
* :class:`~repro.core.cost.L2Cost` — Lagrangian closed form; with box
  bounds, monotone bisection on the multiplier.
* :class:`~repro.core.cost.L1Cost` /
  :class:`~repro.core.cost.AsymmetricLinearCost` — exact LP via the
  in-house simplex (:mod:`repro.optimize.simplex`).
* :class:`~repro.core.cost.LInfCost` — scaling closed form with box
  bisection.
* anything else — projected-subgradient numeric fallback (assumes a
  convex cost; always returns a *feasible* strategy).

Infeasibility (the query cannot be hit inside the box) raises
:class:`repro.errors.InfeasibleError`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    DEFAULT_MARGIN,
    EPS_CONVERGENCE,
    EPS_FEASIBILITY,
    EPS_SET_FEASIBILITY,
    FD_STEP,
)
from repro.core.cost import AsymmetricLinearCost, CostFunction, L1Cost, L2Cost, LInfCost
from repro.core.strategy import Strategy, StrategySpace
from repro.errors import InfeasibleError, ValidationError
from repro.optimize.simplex import linprog

__all__ = [
    "min_cost_to_hit",
    "min_cost_to_hit_l2_batch",
    "min_cost_to_hit_set",
    "HitSubproblem",
]


@dataclass(frozen=True)
class HitSubproblem:
    """One "hit query q" subproblem: ``q . s <= bound`` within a box."""

    weights: np.ndarray  #: the query's weight vector (function input q)
    bound: float  #: gap minus margin; the constraint is q . s <= bound

    def satisfied_by(self, s: np.ndarray, tol: float = EPS_FEASIBILITY) -> bool:
        """Does strategy ``s`` satisfy the constraint (within ``tol``)?"""
        s = np.asarray(s, dtype=float)
        if s.shape != self.weights.shape:
            raise ValidationError(f"strategy shape {s.shape} != {self.weights.shape}")
        return float(self.weights @ s) <= self.bound + tol


def min_cost_to_hit(
    cost: CostFunction,
    weights: np.ndarray,
    gap: float,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
) -> Strategy:
    """Solve Eq. 13-14 for one query.

    Parameters
    ----------
    cost:
        The issuer's cost function.
    weights:
        The query's weight vector ``q``.
    gap:
        ``theta_q - q . p``; positive means the target already hits.
    space:
        Valid-strategy box; defaults to unconstrained.
    margin:
        Strictness slack: the solver enforces ``q . s <= gap - margin``.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (cost.dim,):
        raise ValidationError(f"weights shape {weights.shape} != ({cost.dim},)")
    space = space or StrategySpace.unconstrained(cost.dim)
    if space.dim != cost.dim:
        raise ValidationError(f"space dim {space.dim} != cost dim {cost.dim}")

    if gap > margin:
        return Strategy.zero(cost.dim)  # already hits, strictly
    problem = HitSubproblem(weights=weights, bound=float(gap) - margin)

    if isinstance(cost, L2Cost):
        vector = _solve_l2(cost, problem, space)
    elif isinstance(cost, (L1Cost, AsymmetricLinearCost)):
        vector = _solve_linear_lp(cost, problem, space)
    elif isinstance(cost, LInfCost):
        vector = _solve_linf(cost, problem, space)
    else:
        vector = _solve_numeric(cost, problem, space)
    vector = space.clip(vector)
    if not problem.satisfied_by(vector):
        raise InfeasibleError("query cannot be hit within the strategy bounds")
    return Strategy(vector, cost=cost(vector))


def min_cost_to_hit_l2_batch(
    cost: L2Cost,
    weights_rows: np.ndarray,
    gaps: np.ndarray,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form Eq. 13-14 for a whole batch of queries at once.

    For a weighted-L2 cost the single-constraint optimum is the
    Lagrangian point ``s = b * (q / w) / (q . (q / w))`` with cost
    ``|b| / sqrt(q . (q / w))``; it is also the *box-constrained*
    optimum whenever it happens to lie inside the strategy box (the box
    constraints are then inactive).  This solves every query in a batch
    with two matrix products — the per-query bisection of
    :func:`min_cost_to_hit` is only needed for rows whose optimum is
    clipped by an active bound.

    Parameters mirror :func:`min_cost_to_hit`, with ``weights_rows`` a
    ``(r, d)`` stack of query weight vectors and ``gaps`` their
    ``theta_q - q . p`` values.

    Returns
    -------
    ``(vectors, costs, solved, infeasible)`` where ``vectors``/``costs``
    are only meaningful on ``solved`` rows.  Rows with neither flag set
    have a box-active optimum and need the per-query solver; rows
    flagged ``infeasible`` (all-zero query weights) can never be hit.
    """
    weights_rows = np.atleast_2d(np.asarray(weights_rows, dtype=float))
    gaps = np.atleast_1d(np.asarray(gaps, dtype=float))
    if weights_rows.shape != (gaps.shape[0], cost.dim):
        raise ValidationError(
            f"weights shape {weights_rows.shape} incompatible with "
            f"gaps {gaps.shape} / dim {cost.dim}"
        )
    space = space or StrategySpace.unconstrained(cost.dim)
    if space.dim != cost.dim:
        raise ValidationError(f"space dim {space.dim} != cost dim {cost.dim}")
    q = weights_rows
    bounds = gaps - margin
    rows = q.shape[0]
    vectors = np.zeros((rows, cost.dim))
    costs = np.zeros(rows)
    denom = np.einsum("ij,ij->i", q, q / cost.weights)  # q . W^-1 q per row
    already_hit = bounds >= 0  # the zero strategy suffices (and is free)
    infeasible = (denom <= 0) & ~already_hit
    active = ~already_hit & ~infeasible
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = np.where(active, bounds / np.maximum(denom, 1e-300), 0.0)
    raw = scale[:, None] * (q / cost.weights)
    inside = np.all((raw >= space.lower) & (raw <= space.upper), axis=1)
    use = active & inside
    vectors[use] = raw[use]
    costs[use] = np.abs(bounds[use]) / np.sqrt(denom[use])
    solved = already_hit | use
    return vectors, costs, solved, infeasible


# ----------------------------------------------------------------------
# Weighted L2: minimize sqrt(sum w_i s_i^2) s.t. q.s <= b, box
# ----------------------------------------------------------------------
def _solve_l2(cost: L2Cost, problem: HitSubproblem, space: StrategySpace) -> np.ndarray:
    q, b, w = problem.weights, problem.bound, cost.weights
    unbounded = not (np.isfinite(space.lower).any() or np.isfinite(space.upper).any())
    denom = float(np.sum(q * q / w))
    if denom <= 0:
        raise InfeasibleError("query weights are all zero; no strategy changes its score")
    if unbounded:
        # Lagrangian solution on the boundary q.s = b (b < 0 here).
        return b * (q / w) / denom

    # Box case: s_i(lam) = clip(-lam * q_i / w_i, lo_i, hi_i); the
    # constraint value q . s(lam) decreases monotonically in lam >= 0.
    def value(lam: float) -> float:
        s = np.clip(-lam * q / w, space.lower, space.upper)
        return float(q @ s)

    lo_lam, hi_lam = 0.0, 1.0
    if value(0.0) <= b:
        return np.zeros(cost.dim)
    while value(hi_lam) > b:
        hi_lam *= 2.0
        if hi_lam > 1e18:
            raise InfeasibleError("query cannot be hit within the strategy bounds")
    for __ in range(200):  # ~60 bits of precision
        mid = 0.5 * (lo_lam + hi_lam)
        if value(mid) > b:
            lo_lam = mid
        else:
            hi_lam = mid
    return np.clip(-hi_lam * q / w, space.lower, space.upper)


# ----------------------------------------------------------------------
# Weighted L1 / asymmetric linear: exact LP with split variables
# ----------------------------------------------------------------------
def _solve_linear_lp(
    cost: L1Cost | AsymmetricLinearCost, problem: HitSubproblem, space: StrategySpace
) -> np.ndarray:
    q, b = problem.weights, problem.bound
    d = cost.dim
    if isinstance(cost, AsymmetricLinearCost):
        up_price, down_price = cost.up, cost.down
    else:
        up_price = down_price = cost.weights
    # Variables: u (increase part), v (decrease part); s = u - v.
    c = np.concatenate([up_price, down_price])
    a_ub = np.concatenate([q, -q])[None, :]
    b_ub = np.asarray([b])
    bounds = []
    for i in range(d):
        bounds.append((0.0, space.upper[i] if np.isfinite(space.upper[i]) else None))
    for i in range(d):
        bounds.append((0.0, -space.lower[i] if np.isfinite(space.lower[i]) else None))
    result = linprog(c, a_ub=a_ub, b_ub=b_ub, bounds=bounds)
    return result.x[:d] - result.x[d:]


# ----------------------------------------------------------------------
# Weighted L-infinity: s_i = -t * sign-aligned extreme direction
# ----------------------------------------------------------------------
def _solve_linf(cost: LInfCost, problem: HitSubproblem, space: StrategySpace) -> np.ndarray:
    q, b, w = problem.weights, problem.bound, cost.weights

    # At budget t, the most negative reachable q.s uses s_i = -sign(q_i) * t / w_i
    # clipped to the box; bisect on t.
    def direction(t: float) -> np.ndarray:
        raw = -np.sign(q) * t / w
        return np.clip(raw, space.lower, space.upper)

    def value(t: float) -> float:
        return float(q @ direction(t))

    if value(0.0) <= b:
        return np.zeros(cost.dim)
    lo_t, hi_t = 0.0, 1.0
    while value(hi_t) > b:
        hi_t *= 2.0
        if hi_t > 1e18:
            raise InfeasibleError("query cannot be hit within the strategy bounds")
    for __ in range(200):
        mid = 0.5 * (lo_t + hi_t)
        if value(mid) > b:
            lo_t = mid
        else:
            hi_t = mid
    return direction(hi_t)


# ----------------------------------------------------------------------
# Generic convex cost: projected subgradient from the L2 warm start
# ----------------------------------------------------------------------
def _solve_numeric(
    cost: CostFunction,
    problem: HitSubproblem,
    space: StrategySpace,
    iterations: int = 400,
) -> np.ndarray:
    q, b = problem.weights, problem.bound
    d = cost.dim

    def project(s: np.ndarray) -> np.ndarray:
        """Projection onto the box intersected with ``q . s <= b``."""
        s = np.clip(s, space.lower, space.upper)
        violation = float(q @ s) - b
        if violation <= 0:
            return s
        # Alternate halfspace projection and box clipping (Dykstra-lite);
        # both sets are convex so this converges to a feasible point.
        qq = float(q @ q)
        if qq <= 0:
            raise InfeasibleError("query weights are all zero; no strategy changes its score")
        for __ in range(100):
            s = s - (max(float(q @ s) - b, 0.0) / qq) * q
            s = np.clip(s, space.lower, space.upper)
            if float(q @ s) <= b + EPS_CONVERGENCE:
                return s
        raise InfeasibleError("query cannot be hit within the strategy bounds")

    warm = _solve_l2(L2Cost(d), problem, space)
    best = project(warm)
    best_cost = cost(best)
    current = best.copy()
    step0 = max(1.0, float(np.linalg.norm(best)))
    for t in range(1, iterations + 1):
        grad = _numeric_gradient(cost, current)
        norm = float(np.linalg.norm(grad))
        if norm <= EPS_CONVERGENCE:
            break
        current = project(current - (step0 / (norm * np.sqrt(t))) * grad)
        value = cost(current)
        if value < best_cost:
            best, best_cost = current.copy(), value
    return best


def min_cost_to_hit_set(
    cost: CostFunction,
    weights: np.ndarray,
    gaps: np.ndarray,
    space: StrategySpace | None = None,
    margin: float = DEFAULT_MARGIN,
) -> Strategy:
    """Cheapest single strategy hitting a whole *set* of queries.

    Solves ``min Cost(s)`` s.t. ``W s <= gaps - margin`` (row-wise) plus
    the strategy box — the multi-constraint generalization used by the
    exact (exhaustive) IQ search, where a candidate query subset must be
    hit simultaneously.

    Solvers: L1/asymmetric -> exact LP; L2 (weighted) -> Dykstra's
    alternating projections (minimum-norm point of a polyhedron);
    anything else -> projected subgradient with cyclic projections.
    """
    weights = np.atleast_2d(np.asarray(weights, dtype=float))
    gaps = np.atleast_1d(np.asarray(gaps, dtype=float))
    if weights.shape != (gaps.shape[0], cost.dim):
        raise ValidationError(
            f"weights shape {weights.shape} incompatible with gaps {gaps.shape} / dim {cost.dim}"
        )
    space = space or StrategySpace.unconstrained(cost.dim)
    bounds = gaps - margin
    rows = np.flatnonzero(bounds < 0)  # satisfied-at-zero rows stay as guards
    if rows.size == 0:
        return Strategy.zero(cost.dim)

    if isinstance(cost, (L1Cost, AsymmetricLinearCost)):
        vector = _set_linear_lp(cost, weights, bounds, space)
    elif isinstance(cost, L2Cost):
        vector = _set_l2_dykstra(cost, weights, bounds, space)
    else:
        vector = _set_numeric(cost, weights, bounds, space)
    vector = space.clip(vector)
    if np.any(weights @ vector > bounds + EPS_SET_FEASIBILITY):
        raise InfeasibleError("query set cannot be hit jointly within the strategy bounds")
    return Strategy(vector, cost=cost(vector))


def _set_linear_lp(
    cost: L1Cost | AsymmetricLinearCost,
    weights: np.ndarray,
    bounds: np.ndarray,
    space: StrategySpace,
) -> np.ndarray:
    d = cost.dim
    if isinstance(cost, AsymmetricLinearCost):
        up_price, down_price = cost.up, cost.down
    else:
        up_price = down_price = cost.weights
    c = np.concatenate([up_price, down_price])
    a_ub = np.hstack([weights, -weights])
    lp_bounds = []
    for i in range(d):
        lp_bounds.append((0.0, space.upper[i] if np.isfinite(space.upper[i]) else None))
    for i in range(d):
        lp_bounds.append((0.0, -space.lower[i] if np.isfinite(space.lower[i]) else None))
    result = linprog(c, a_ub=a_ub, b_ub=bounds, bounds=lp_bounds)
    return result.x[:d] - result.x[d:]


def _set_l2_dykstra(
    cost: L2Cost,
    weights: np.ndarray,
    bounds: np.ndarray,
    space: StrategySpace,
    iterations: int = 2000,
) -> np.ndarray:
    """Minimum weighted-norm point of the polyhedron via Dykstra.

    In the metric ``||s||_w = sqrt(sum w_i s_i^2)``, projecting the
    origin onto the intersection of the halfspaces and the box yields
    the optimum.  Work in scaled coordinates ``u = sqrt(w) * s`` where
    the metric is Euclidean; each constraint row rescales accordingly.
    """
    scale = np.sqrt(cost.weights)
    a = weights / scale  # constraint rows in u-space
    lo = space.lower * scale
    hi = space.upper * scale
    sets = [("half", i) for i in range(a.shape[0])] + [("box", None)]
    u = np.zeros(cost.dim)
    corrections = {key: np.zeros(cost.dim) for key in sets}
    row_norms = np.einsum("ij,ij->i", a, a)
    if np.any(row_norms <= 0):
        raise InfeasibleError("a query with all-zero weights cannot be hit")
    for __ in range(iterations):
        shift = 0.0
        for key in sets:
            kind, i = key
            y = u + corrections[key]
            if kind == "half":
                violation = float(a[i] @ y) - bounds[i]
                projected = y - (max(violation, 0.0) / row_norms[i]) * a[i] if violation > 0 else y
            else:
                projected = np.clip(y, lo, hi)
            corrections[key] = y - projected
            shift = max(shift, float(np.abs(projected - u).max(initial=0.0)))
            u = projected
        if shift < EPS_CONVERGENCE:
            break
    if np.any(a @ u > bounds + EPS_SET_FEASIBILITY):
        raise InfeasibleError("query set cannot be hit jointly within the strategy bounds")
    return u / scale


def _set_numeric(
    cost: CostFunction,
    weights: np.ndarray,
    bounds: np.ndarray,
    space: StrategySpace,
    iterations: int = 500,
) -> np.ndarray:
    """Projected subgradient with cyclic feasibility projections."""

    def project(s: np.ndarray) -> np.ndarray:
        row_norms = np.einsum("ij,ij->i", weights, weights)
        if np.any(row_norms <= 0):
            raise InfeasibleError("a query with all-zero weights cannot be hit")
        for __ in range(500):
            s = np.clip(s, space.lower, space.upper)
            violations = weights @ s - bounds
            worst = int(np.argmax(violations))
            if violations[worst] <= EPS_CONVERGENCE:
                return s
            s = s - (violations[worst] / row_norms[worst]) * weights[worst]
        raise InfeasibleError("query set cannot be hit jointly within the strategy bounds")

    warm = _set_l2_dykstra(L2Cost(cost.dim), weights, bounds, space)
    best = project(warm)
    best_cost = cost(best)
    current = best.copy()
    step0 = max(1.0, float(np.linalg.norm(best)))
    for t in range(1, iterations + 1):
        grad = _numeric_gradient(cost, current)
        norm = float(np.linalg.norm(grad))
        if norm <= EPS_CONVERGENCE:
            break
        current = project(current - (step0 / (norm * np.sqrt(t))) * grad)
        value = cost(current)
        if value < best_cost:
            best, best_cost = current.copy(), value
    return best


def _numeric_gradient(cost: CostFunction, s: np.ndarray, h: float = FD_STEP) -> np.ndarray:
    grad = np.empty_like(s)
    for i in range(s.shape[0]):
        bump = np.zeros_like(s)
        bump[i] = h
        grad[i] = (cost(s + bump) - cost(s - bump)) / (2 * h)
    return grad
