"""A self-contained two-phase primal simplex linear-program solver.

The paper solves the single-constraint subproblem of Eq. 13-14 with "a
standard math tool" (it cites Khachiyan's polynomial LP algorithm).  We
provide our own dense simplex implementation so the library has no
dependency beyond numpy.  It is used for:

* L1 / linear min-cost-to-hit subproblems with box bounds
  (:mod:`repro.optimize.hit_cost`),
* halfspace-intersection emptiness tests
  (:mod:`repro.geometry.halfspace`),
* the exhaustive exact IQ search (:mod:`repro.core.exhaustive`).

The interface mirrors the familiar ``linprog`` shape::

    result = linprog(c, a_ub=A, b_ub=b, a_eq=Aeq, b_eq=beq,
                     bounds=[(lo, hi), ...])

All problems are solved as minimization.  Infeasible problems raise
:class:`repro.errors.InfeasibleError`; unbounded problems raise
:class:`repro.errors.UnboundedError`.

Implementation notes
--------------------
The problem is converted to standard form (non-negative variables,
equality constraints) by shifting finitely-bounded variables, splitting
free variables into positive/negative parts, and adding slack variables
for inequalities and upper bounds.  Phase 1 minimizes the sum of
artificial variables with Bland's anti-cycling rule; phase 2 optimizes
the true objective starting from the phase-1 basis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.constants import LP_RESIDUAL_TOL, LP_TOL as _TOL
from repro.errors import InfeasibleError, UnboundedError, ValidationError

__all__ = ["linprog", "LinprogResult"]


@dataclass
class LinprogResult:
    """Solution of a linear program."""

    x: np.ndarray  #: optimal primal solution in the original variables
    fun: float  #: optimal objective value
    iterations: int  #: total simplex pivots (both phases)


def linprog(
    c: "np.typing.ArrayLike",
    a_ub: "np.typing.ArrayLike | None" = None,
    b_ub: "np.typing.ArrayLike | None" = None,
    a_eq: "np.typing.ArrayLike | None" = None,
    b_eq: "np.typing.ArrayLike | None" = None,
    bounds: Sequence[tuple[float | None, float | None]] | None = None,
) -> LinprogResult:
    """Minimize ``c . x`` subject to ``a_ub x <= b_ub``, ``a_eq x = b_eq``.

    Parameters
    ----------
    c:
        Objective coefficients, length ``n``.
    a_ub, b_ub:
        Inequality constraints (optional).
    a_eq, b_eq:
        Equality constraints (optional).
    bounds:
        Per-variable ``(lo, hi)`` pairs; ``None`` entries mean
        unbounded on that side.  Defaults to ``x >= 0`` for every
        variable, matching the conventional LP standard form.
    """
    c = np.atleast_1d(np.asarray(c, dtype=float))
    n = c.shape[0]
    a_ub, b_ub = _check_system(a_ub, b_ub, n, "a_ub/b_ub")
    a_eq, b_eq = _check_system(a_eq, b_eq, n, "a_eq/b_eq")
    lows, highs = _normalize_bounds(bounds, n)

    std = _Standardizer(c, a_ub, b_ub, a_eq, b_eq, lows, highs)
    tableau_a, tableau_b, std_c = std.build()
    x_std, iterations = _two_phase(tableau_a, tableau_b, std_c)
    x = std.recover(x_std)
    return LinprogResult(x=x, fun=float(np.dot(c, x)), iterations=iterations)


def _check_system(
    a: "np.typing.ArrayLike | None",
    b: "np.typing.ArrayLike | None",
    n: int,
    label: str,
) -> tuple[np.ndarray, np.ndarray]:
    if a is None and b is None:
        return np.empty((0, n)), np.empty(0)
    if a is None or b is None:
        raise ValidationError(f"{label}: matrix and vector must be given together")
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_1d(np.asarray(b, dtype=float))
    if a.shape != (b.shape[0], n):
        raise ValidationError(f"{label}: shape mismatch {a.shape} vs ({b.shape[0]}, {n})")
    return a, b


def _normalize_bounds(
    bounds: Sequence[tuple[float | None, float | None]] | None, n: int
) -> tuple[np.ndarray, np.ndarray]:
    if bounds is None:
        return np.zeros(n), np.full(n, np.inf)
    if len(bounds) != n:
        raise ValidationError(f"bounds must have {n} entries, got {len(bounds)}")
    lows = np.empty(n)
    highs = np.empty(n)
    for i, pair in enumerate(bounds):
        lo, hi = pair
        lows[i] = -np.inf if lo is None else float(lo)
        highs[i] = np.inf if hi is None else float(hi)
        if lows[i] > highs[i]:
            raise InfeasibleError(f"bound {i} is empty: ({lows[i]}, {highs[i]})")
    return lows, highs


class _Standardizer:
    """Converts a bounded LP to standard form and maps solutions back.

    Each original variable ``x_i`` becomes:

    * ``lo`` finite: ``x_i = lo + u_i`` with ``u_i >= 0`` (and an upper
      bound row ``u_i <= hi - lo`` when ``hi`` is finite too);
    * ``lo = -inf, hi`` finite: ``x_i = hi - u_i`` with ``u_i >= 0``;
    * free: ``x_i = u_i+ - u_i-``, two standard-form variables.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        a_eq: np.ndarray,
        b_eq: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
    ) -> None:
        self.c, self.a_ub, self.b_ub = c, a_ub, b_ub
        self.a_eq, self.b_eq = a_eq, b_eq
        self.lows, self.highs = lows, highs
        self.n = c.shape[0]

    def build(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self.n
        # Column description of every standard-form variable: (orig, sign)
        self.columns: list[tuple[int, float]] = []
        shift = np.zeros(n)  # x = shift + sum(sign * u) over that var's columns
        extra_ub_rows = []  # (std_col, rhs) for finite ranges
        for i in range(n):
            lo, hi = self.lows[i], self.highs[i]
            if np.isfinite(lo):
                shift[i] = lo
                self.columns.append((i, 1.0))
                if np.isfinite(hi):
                    extra_ub_rows.append((len(self.columns) - 1, hi - lo))
            elif np.isfinite(hi):
                shift[i] = hi
                self.columns.append((i, -1.0))
            else:
                self.columns.append((i, 1.0))
                self.columns.append((i, -1.0))
        self.shift = shift
        k = len(self.columns)

        def to_std(matrix: np.ndarray) -> np.ndarray:
            out = np.zeros((matrix.shape[0], k))
            for j, (orig, sign) in enumerate(self.columns):
                out[:, j] = sign * matrix[:, orig]
            return out

        a_ub_std = to_std(self.a_ub)
        b_ub_std = self.b_ub - self.a_ub @ shift
        a_eq_std = to_std(self.a_eq)
        b_eq_std = self.b_eq - self.a_eq @ shift
        if extra_ub_rows:
            rows = np.zeros((len(extra_ub_rows), k))
            rhs = np.empty(len(extra_ub_rows))
            for r, (col, bound) in enumerate(extra_ub_rows):
                rows[r, col] = 1.0
                rhs[r] = bound
            a_ub_std = np.vstack([a_ub_std, rows])
            b_ub_std = np.concatenate([b_ub_std, rhs])

        # Add slacks: [A_ub | I] u = b_ub ; [A_eq | 0] u = b_eq
        m_ub, m_eq = a_ub_std.shape[0], a_eq_std.shape[0]
        total = k + m_ub
        a = np.zeros((m_ub + m_eq, total))
        a[:m_ub, :k] = a_ub_std
        a[:m_ub, k:] = np.eye(m_ub)
        a[m_ub:, :k] = a_eq_std
        b = np.concatenate([b_ub_std, b_eq_std])
        c_std = np.zeros(total)
        for j, (orig, sign) in enumerate(self.columns):
            c_std[j] += sign * self.c[orig]
        self.k = k
        return a, b, c_std

    def recover(self, x_std: np.ndarray) -> np.ndarray:
        x = self.shift.copy()
        for j, (orig, sign) in enumerate(self.columns):
            x[orig] += sign * x_std[j]
        return x


def _two_phase(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple[np.ndarray, int]:
    """Solve ``min c.u`` s.t. ``a u = b``, ``u >= 0``; returns (u, pivots)."""
    m, n = a.shape
    # Make all right-hand sides non-negative.
    neg = b < 0
    a = a.copy()
    b = b.copy()
    a[neg] *= -1
    b[neg] *= -1

    if m == 0:
        # No constraints: optimum is 0 unless some cost coefficient is
        # negative, in which case the problem is unbounded below.
        if np.any(c < -_TOL):
            raise UnboundedError("objective unbounded below (no constraints)")
        return np.zeros(n), 0

    # Phase 1: artificial basis.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    # Phase-1 objective: minimize sum of artificials -> reduced costs.
    tableau[m, :n] = -a.sum(axis=0)
    tableau[m, -1] = -b.sum()
    basis = list(range(n, n + m))
    pivots1 = _iterate(tableau, basis, n + m)
    if tableau[m, -1] < -LP_RESIDUAL_TOL:
        raise InfeasibleError("linear program is infeasible")

    # Drive any artificial variables out of the basis (degenerate rows).
    for row, var in enumerate(basis):
        if var >= n:
            pivot_col = None
            for j in range(n):
                if abs(tableau[row, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col is None:
                continue  # redundant constraint; row stays degenerate
            _pivot(tableau, row, pivot_col)
            basis[row] = pivot_col

    # Phase 2 objective row.
    tableau[m, :] = 0.0
    tableau[m, :n] = c
    for row, var in enumerate(basis):
        if var < n and abs(c[var]) > 0:
            tableau[m, :] -= c[var] * tableau[row, :]
    # Block artificial columns from re-entering.
    tableau[:, n : n + m] = 0.0
    pivots2 = _iterate(tableau, basis, n)

    x = np.zeros(n)
    for row, var in enumerate(basis):
        if var < n:
            # Standard-form variables are non-negative by definition;
            # phase-1's accepted residual can leave a ~LP_RESIDUAL_TOL
            # negative basic value, which is numerical noise — clamp it.
            x[var] = max(float(tableau[row, -1]), 0.0)
    return x, pivots1 + pivots2


def _iterate(
    tableau: np.ndarray, basis: list[int], num_cols: int, max_pivots: int = 100_000
) -> int:
    m = len(basis)
    pivots = 0
    while True:
        # Bland's rule: entering variable = lowest index with negative
        # reduced cost (guarantees termination).
        entering = None
        for j in range(num_cols):
            if tableau[m, j] < -_TOL:
                entering = j
                break
        if entering is None:
            return pivots
        # Ratio test, again lowest index on ties (Bland).
        best_ratio, leaving = np.inf, None
        for i in range(m):
            coef = tableau[i, entering]
            if coef > _TOL:
                ratio = tableau[i, -1] / coef
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving is None or basis[i] < basis[leaving])
                ):
                    best_ratio, leaving = ratio, i
        if leaving is None:
            raise UnboundedError("objective unbounded below")
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        pivots += 1
        if pivots > max_pivots:
            raise ValidationError("simplex pivot limit exceeded (numerical trouble?)")


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    tableau[row, :] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > 0:
            tableau[i, :] -= tableau[i, col] * tableau[row, :]
