"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can write ``except ReproError`` to catch
library failures without swallowing programming errors (``TypeError``,
``KeyError``, ...) raised by buggy user code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError):
    """Invalid user input: bad shapes, out-of-range parameters, etc."""


class InfeasibleError(ReproError):
    """A constrained problem admits no feasible solution.

    Raised e.g. by the LP solver when constraints are contradictory, or
    by :func:`repro.optimize.hit_cost.min_cost_to_hit` when a query
    cannot be hit within the strategy bounds.
    """


class UnboundedError(ReproError):
    """A linear program is unbounded in the optimization direction."""


class BudgetExhaustedError(ReproError):
    """An iterative search ran out of its configured budget.

    Carries the best solution found so far in :attr:`best`, so callers
    that prefer a partial answer over an exception can recover it.
    """

    def __init__(self, message: str, best=None):
        super().__init__(message)
        self.best = best


class IndexCorruptionError(ReproError):
    """An index invariant was violated (internal consistency check).

    Also raised when a persisted index — a ``.npz`` shard file or a
    sharded-directory manifest — is truncated, unreadable, or missing
    required fields.  Schema-version and fingerprint mismatches on an
    otherwise well-formed file raise :class:`ValidationError` instead:
    the file is intact, it just belongs to different data.
    """


class CheckFailure(ReproError):
    """A correctness-harness oracle found a divergence.

    Raised by :mod:`repro.check` when a differential oracle disagrees —
    an incrementally maintained index differs from a rebuild, the
    affected-subspace evaluation differs from the full one, or an IQ
    result's reported fields fail re-verification from scratch.  The
    message carries enough context to replay the failing scenario.
    """


class SQLError(ReproError):
    """Base class for errors raised by the mini DBMS."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be tokenized or parsed."""


class SQLCatalogError(SQLError):
    """Reference to a missing table/column, or a duplicate definition."""


class SQLExecutionError(SQLError):
    """A statement failed during execution (type mismatch, arity, ...)."""
